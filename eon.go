// Package eon is a from-scratch reproduction of "Eon Mode: Bringing the
// Vertica Columnar Database to the Cloud" (Vandiver et al., SIGMOD 2018):
// a distributed columnar SQL analytics engine that runs in either the
// classic shared-nothing Enterprise mode or in Eon mode, where data and
// metadata live on a shared object store and compute nodes subscribe to
// segment shards of a hash space.
//
// The library simulates a multi-node cluster in process: nodes have
// their own catalogs, caches and local disks; shared storage, network
// latency and node failures are modeled. The same SQL front end,
// optimizer and vectorized execution engine serve both modes.
//
// Quick start:
//
//	db, _ := eon.Create(eon.Config{
//	    Mode:       eon.ModeEon,
//	    Nodes:      []eon.NodeSpec{{Name: "n1"}, {Name: "n2"}, {Name: "n3"}},
//	    ShardCount: 3,
//	})
//	s := db.NewSession()
//	s.Execute(`CREATE TABLE sales (id INTEGER, region VARCHAR, price FLOAT)`)
//	s.Execute(`INSERT INTO sales VALUES (1, 'east', 9.99)`)
//	res, _ := s.Query(`SELECT region, COUNT(*) FROM sales GROUP BY region`)
package eon

import (
	"eon/internal/core"
	"eon/internal/netsim"
	"eon/internal/objstore"
	"eon/internal/obs"
	"eon/internal/reconcile"
	"eon/internal/resilience"
	"eon/internal/systable"
	"eon/internal/types"
)

// ResilienceStats is a snapshot of the resilient shared-storage layer's
// counters.
type ResilienceStats = resilience.Stats

// ResilienceConfig tunes the shared-storage retry/hedge/breaker layer
// (set Config.Resilience).
type ResilienceConfig = resilience.Config

// RetryPolicy tunes the shared-storage retry loop (attempts, capped
// full-jitter backoff, per-attempt deadline budget).
type RetryPolicy = resilience.Policy

// BreakerConfig tunes a circuit breaker (window, trip ratio, cooldown,
// probabilistic half-open probes).
type BreakerConfig = resilience.BreakerConfig

// FaultSchedule is a deterministic, seedable schedule of injected
// shared-storage faults for chaos testing (set SimConfig.Faults).
type FaultSchedule = objstore.FaultSchedule

// Fault-schedule building blocks.
type (
	// OpRange is a half-open interval [From, To) of store op indices.
	OpRange = objstore.OpRange
	// FaultWindow fails requests at a rate within an op range.
	FaultWindow = objstore.FaultWindow
	// LatencySpike adds service time to requests in an op range.
	LatencySpike = objstore.LatencySpike
)

// Mode selects the architecture: ModeEnterprise (shared-nothing, buddy
// projections, WOS) or ModeEon (shared storage, shards, caches).
type Mode = core.Mode

// The two modes.
const (
	ModeEnterprise = core.ModeEnterprise
	ModeEon        = core.ModeEon
)

// Config configures a database cluster. Zero values get sensible
// defaults; only Nodes is required.
type Config = core.Config

// NodeSpec describes one cluster member.
type NodeSpec = core.NodeSpec

// Session is a client connection; safe to create per goroutine.
type Session = core.Session

// Result is a query result set.
type Result = core.Result

// PreparedStatement is a SELECT parsed and validated once and executable
// many times with bind-parameter values ("?" or $N placeholders); see
// Session.Prepare.
type PreparedStatement = core.PreparedStatement

// ErrQueuedTooLong marks a query that spent its whole Session.Timeout
// parked in an admission or execution-slot queue without ever starting
// to execute — "the cluster was saturated", distinct from a
// mid-execution timeout.
var ErrQueuedTooLong = core.ErrQueuedTooLong

// CrunchMode selects the §4.4 crunch-scaling mechanism.
type CrunchMode = core.CrunchMode

// Crunch scaling modes.
const (
	CrunchOff            = core.CrunchOff
	CrunchHashFilter     = core.CrunchHashFilter
	CrunchContainerSplit = core.CrunchContainerSplit
)

// MergeoutStats reports one tuple-mover pass.
type MergeoutStats = core.MergeoutStats

// ScanStats is scan-path instrumentation: pruning effectiveness, bytes
// fetched, cache behaviour and the I/O/decode/filter time split. Per
// query via Session.LastScanStats, cumulative via DB.ScanStats.
type ScanStats = core.ScanStats

// ExecStats summarizes the execution engine's resource behaviour for a
// session's most recent query: which executor ran, the peak bytes
// pipeline breakers held on the busiest node, and spill activity under
// Config.QueryMemoryBudget. Per query via Session.LastExecStats.
type ExecStats = core.ExecStats

// MetricsSnapshot is a point-in-time view of every registered metric:
// monotonic counters, gauges and latency histograms across the object
// store, caches, resilience layer, network, scans and the tuple mover.
// Render with its JSON() or Text() methods.
type MetricsSnapshot = obs.Snapshot

// QueryProfile is the hierarchical execution profile of one query —
// operator spans (scan/join/aggregate/...) down through per-node scan
// fragments to fetch/decode/filter leaves, with wall times, row counts,
// bytes and counter attributes. Retrieve via Session.LastProfile after
// enabling Session.Trace (or a slow-query threshold).
type QueryProfile = obs.Profile

// SlowQuery is one slow-query log entry: the statement, when it started,
// its wall time, the error (if it failed), its executor stats and its
// full execution profile.
type SlowQuery = core.SlowQuery

// DataCollector is the event-log half of the observability layer: named,
// retention-bounded ring buffers that hot paths emit typed events into
// (depot fetches and evictions, mergeouts, spills, admission waits, slow
// queries, reconcile actions). Every ring is queryable in SQL as
// v_monitor.dc_<ring>.
type DataCollector = obs.DataCollector

// DCRing is one named Data Collector event ring.
type DCRing = obs.DCRing

// DCEvent is one Data Collector event: timestamp, emitting node, up to
// two strings and four integers, named per ring by its DCRingDef.
type DCEvent = obs.DCEvent

// DCRingDef names a ring and the event fields it uses.
type DCRingDef = obs.DCRingDef

// DCRingStats summarizes one ring: retained/emitted/dropped events and
// retained bytes.
type DCRingStats = obs.DCRingStats

// DCPolicy bounds each Data Collector ring by rows and bytes (set
// Config.DataCollectorPolicy; zero fields default to 1024 rows, 1 MiB).
type DCPolicy = obs.DCPolicy

// SystemTables is the registry of v_monitor virtual tables. Every
// registered table is queryable with ordinary SQL through any session.
type SystemTables = systable.Registry

// ReconcileStatusRow is one reconciler's state as surfaced through
// v_monitor.reconcile_status.
type ReconcileStatusRow = core.ReconcileStatus

// DB is a database cluster.
type DB struct {
	inner *core.DB
}

// Create initializes a new cluster.
func Create(cfg Config) (*DB, error) {
	inner, err := core.Create(cfg)
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner}, nil
}

// Revive starts an Eon cluster from the contents of shared storage after
// a shutdown or catastrophic instance loss (paper §3.5). cfg.Shared must
// point at the storage; the node set defaults to the previous cluster's.
func Revive(cfg Config) (*DB, error) {
	inner, err := core.Revive(cfg)
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner}, nil
}

// Internal exposes the underlying engine for benchmarks and tests that
// need sub-system access (caches, catalogs, the simulated network).
func (db *DB) Internal() *core.DB { return db.inner }

// Mode returns the cluster's architecture.
func (db *DB) Mode() Mode { return db.inner.Mode() }

// ScanStats returns the cumulative scan instrumentation across every
// query the database has executed.
func (db *DB) ScanStats() ScanStats { return db.inner.ScanStats() }

// Metrics snapshots every metric the cluster has registered (counters,
// gauges, histograms) for export as JSON or text.
func (db *DB) Metrics() MetricsSnapshot { return db.inner.Metrics() }

// SlowQueries returns the slow-query log, oldest first. Entries are
// recorded when Config.SlowQueryThreshold > 0 and a query's wall time
// reaches it; each carries a complete execution profile.
func (db *DB) SlowQueries() []SlowQuery { return db.inner.SlowQueries() }

// DataCollector returns the cluster's Data Collector, or nil when
// Config.DisableDataCollector is set. Its rings back the
// v_monitor.dc_* system tables.
func (db *DB) DataCollector() *DataCollector { return db.inner.DataCollector() }

// SystemTables returns the v_monitor virtual-table registry: every name
// it lists is queryable with ordinary SQL (e.g.
// `SELECT m.name, m.value FROM v_monitor.metrics m WHERE m.kind = 'counter'`).
func (db *DB) SystemTables() *SystemTables { return db.inner.SystemTables() }

// NewSession opens a session.
func (db *DB) NewSession() *Session { return db.inner.NewSession() }

// NewSessionOn opens a session pinned to a subcluster: queries run only
// on its nodes while they can cover all shards (paper §4.3).
func (db *DB) NewSessionOn(subcluster string) *Session {
	return db.inner.NewSessionOn(subcluster)
}

// Execute runs one SQL statement on a fresh session.
func (db *DB) Execute(sql string) (*Result, error) {
	return db.NewSession().Execute(sql)
}

// LoadRows bulk-loads a batch of rows (columns in table order) — the
// COPY path of paper §4.5 / Figure 8.
func (db *DB) LoadRows(table string, batch *Batch) error {
	return db.inner.LoadRows(table, batch)
}

// KillNode simulates a node process failure.
func (db *DB) KillNode(name string) error { return db.inner.KillNode(name) }

// RecoverNode restarts a failed node: catalog catch-up, re-subscription
// and peer cache warming (paper §6.1).
func (db *DB) RecoverNode(name string) error { return db.inner.RecoverNode(name) }

// AddNode grows the cluster elastically; only the new node's cache needs
// filling — no data redistribution (paper §6.4).
func (db *DB) AddNode(spec NodeSpec) error { return db.inner.AddNode(spec) }

// RemoveNode drains and removes a node.
func (db *DB) RemoveNode(name string) error { return db.inner.RemoveNode(name) }

// Rebalance re-plans shard subscriptions for fault tolerance and
// subcluster coverage.
func (db *DB) Rebalance() error { return db.inner.Rebalance() }

// WipeNode simulates catastrophic instance loss: the node process dies
// and its depot is gone with it (the spot-instance case of paper §6.1).
func (db *DB) WipeNode(name string) error { return db.inner.WipeNode(name) }

// AddSpare provisions a warm standby: the node subscribes PASSIVE to
// every shard and pre-warms its depot from peers, so a later promotion
// is a subscription flip rather than a cold revive (paper §3.3, §6.1).
func (db *DB) AddSpare(spec NodeSpec) error { return db.inner.AddSpare(spec) }

// PromoteSpare flips a warm spare's PASSIVE subscriptions ACTIVE and
// seats it in the given subcluster, replacing lost capacity without
// moving data.
func (db *DB) PromoteSpare(name, subcluster string) error {
	return db.inner.PromoteSpare(name, subcluster)
}

// WarmSpare re-warms a spare's depot from its peers' MRU lists,
// returning the number of files warmed.
func (db *DB) WarmSpare(name string) (int, error) { return db.inner.WarmSpare(name) }

// RunTupleMover performs one moveout pass (Enterprise) and one mergeout
// pass (both modes; paper §6.2).
func (db *DB) RunTupleMover() (MergeoutStats, error) {
	if _, err := db.inner.RunMoveout(); err != nil {
		return MergeoutStats{}, err
	}
	return db.inner.RunMergeout()
}

// SyncMetadata uploads catalog logs to shared storage and advances the
// truncation version (paper §3.5). The paper runs this on a timer; call
// it explicitly here.
func (db *DB) SyncMetadata() error { return db.inner.SyncMetadata() }

// RunGC deletes unreferenced storage files that are safe to drop (paper
// §6.5).
func (db *DB) RunGC() (int, error) { return db.inner.RunGC() }

// ScrubLeakedFiles removes orphan files left by crashes (paper §6.5).
func (db *DB) ScrubLeakedFiles() ([]string, error) { return db.inner.ScrubLeakedFiles() }

// CopyTable snapshots src as a new table dst whose containers reference
// the same immutable storage files — no data moves (paper §5.1).
func (db *DB) CopyTable(src, dst string) error { return db.inner.CopyTable(src, dst) }

// DropPartition removes a table partition as a metadata-only operation;
// files free once unreferenced.
func (db *DB) DropPartition(table, partitionKey string) (int, error) {
	return db.inner.DropPartition(table, partitionKey)
}

// MovePartition retags a partition's containers from src to a
// structurally identical dst table (paper §4.5 partition management).
func (db *DB) MovePartition(src, dst, partitionKey string) (int, error) {
	return db.inner.MovePartition(src, dst, partitionKey)
}

// RefreshColumns recomputes a flattened table's denormalized columns
// after its dimension tables change (paper §2.1).
func (db *DB) RefreshColumns(table string) (int, error) {
	return db.inner.RefreshColumns(table)
}

// SetNeverCacheTable installs the "never cache table T" shaping policy
// (paper §5.2).
func (db *DB) SetNeverCacheTable(table string, never bool) {
	db.inner.SetNeverCacheTable(table, never)
}

// Shutdown stops the cluster cleanly, uploading remaining metadata and
// releasing the shared-storage lease so Revive can start immediately.
func (db *DB) Shutdown() error { return db.inner.Shutdown() }

// IsShutdown reports whether the cluster is down (explicitly or from an
// invariant violation, paper §3.4).
func (db *DB) IsShutdown() bool { return db.inner.IsShutdown() }

// TruncationVersion returns the catalog version up to which shared
// storage holds a complete, revivable record.
func (db *DB) TruncationVersion() uint64 { return db.inner.TruncationVersion() }

// ResilienceStats snapshots the shared-storage resilience counters:
// attempts, retries, hedged reads fired/won, circuit-breaker opens,
// shed requests and degradation fallbacks (paper §5.3).
func (db *DB) ResilienceStats() ResilienceStats { return db.inner.ResilienceStats() }

// --- elastic reconciliation ---

// ClusterSpec declares the cluster shape the reconciler maintains:
// subclusters and their sizes, the warm-spare pool size, the
// replication factor, and optional autoscale policies.
type ClusterSpec = reconcile.ClusterSpec

// SubclusterSpec declares one subcluster's desired size.
type SubclusterSpec = reconcile.SubclusterSpec

// AutoscalePolicy lets the reconciler resize a subcluster between Min
// and Max from observed query pressure (queue depth, p95 latency).
type AutoscalePolicy = reconcile.AutoscalePolicy

// ReconcilerConfig tunes the reconcile loop (spec, action budget per
// round, retry policy, failure backoff, tick interval).
type ReconcilerConfig = reconcile.Config

// Reconciler is the level-triggered control loop that diffs the
// declared ClusterSpec against live cluster state each round and
// executes a bounded, prioritized repair plan: promote a warm spare
// over a lost member, revive, add, remove, rebalance.
type Reconciler = reconcile.Reconciler

// ReconcileStatus is one round's outcome: Converged, Progressing (with
// pending actions), or Blocked (with reasons).
type ReconcileStatus = reconcile.Status

// Reconcile status codes.
const (
	ReconcileConverged   = reconcile.Converged
	ReconcileProgressing = reconcile.Progressing
	ReconcileBlocked     = reconcile.Blocked
)

// NewReconciler builds a reconciler for this cluster. Drive it manually
// with Tick or continuously with Run.
func (db *DB) NewReconciler(cfg ReconcilerConfig) *Reconciler {
	return reconcile.New(db.inner, cfg)
}

// NewMemStore returns an in-memory shared object store, optionally
// wrapped in the latency/failure simulator via NewSimStore.
func NewMemStore() objstore.Store { return objstore.NewMem() }

// SimConfig tunes the shared-storage simulator (latency, bandwidth,
// throttling, transient failures).
type SimConfig = objstore.SimConfig

// NewSimStore wraps a backing store with the S3-behaviour simulator.
func NewSimStore(backend objstore.Store, cfg SimConfig) *objstore.Sim {
	return objstore.NewSim(backend, cfg)
}

// LinkCost describes network link latency and bandwidth for the cluster
// interconnect simulation.
type LinkCost = netsim.LinkCost

// NewNetwork builds a simulated interconnect with a default link cost.
func NewNetwork(def LinkCost) *netsim.Network { return netsim.New(def) }

// --- value construction for LoadRows ---

// Type is a SQL scalar type.
type Type = types.Type

// Scalar types.
const (
	Int64     = types.Int64
	Float64   = types.Float64
	Varchar   = types.Varchar
	Bool      = types.Bool
	Date      = types.Date
	Timestamp = types.Timestamp
)

// Schema describes a relation's columns.
type Schema = types.Schema

// Column is one schema entry.
type Column = types.Column

// Batch is a columnar slice of rows.
type Batch = types.Batch

// Row is one tuple.
type Row = types.Row

// Datum is one nullable scalar value.
type Datum = types.Datum

// NewBatch allocates an empty batch for a schema.
func NewBatch(s Schema, capHint int) *Batch { return types.NewBatch(s, capHint) }

// Value constructors.
var (
	Int     = types.NewInt
	Flt     = types.NewFloat
	Str     = types.NewString
	Boolean = types.NewBool
	Day     = types.NewDate
	Null    = types.NullDatum
)
