package netsim

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestTransferFree(t *testing.T) {
	n := New(LinkCost{})
	if err := n.Transfer(context.Background(), "a", "b", 1000); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Messages != 1 || st.Bytes != 1000 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTransferLatency(t *testing.T) {
	n := New(LinkCost{Latency: 20 * time.Millisecond})
	start := time.Now()
	n.Transfer(context.Background(), "a", "b", 0)
	if time.Since(start) < 15*time.Millisecond {
		t.Error("latency not applied")
	}
}

func TestTransferBandwidth(t *testing.T) {
	n := New(LinkCost{Bandwidth: 1 << 20}) // 1 MiB/s
	start := time.Now()
	n.Transfer(context.Background(), "a", "b", 1<<18) // 256 KiB -> ~250 ms
	if time.Since(start) < 200*time.Millisecond {
		t.Error("bandwidth not applied")
	}
}

func TestDownNodeUnreachable(t *testing.T) {
	n := New(LinkCost{})
	n.SetDown("b", true)
	err := n.Transfer(context.Background(), "a", "b", 10)
	if !errors.Is(err, ErrUnreachable) {
		t.Errorf("want ErrUnreachable, got %v", err)
	}
	if n.Stats().Messages != 0 {
		t.Error("failed transfer must not count")
	}
	n.SetDown("b", false)
	if err := n.Transfer(context.Background(), "a", "b", 10); err != nil {
		t.Errorf("recovered node should be reachable: %v", err)
	}
}

func TestLinkOverride(t *testing.T) {
	n := New(LinkCost{})
	n.SetLink("a", "b", LinkCost{Latency: 30 * time.Millisecond})
	start := time.Now()
	n.Transfer(context.Background(), "a", "b", 0)
	if time.Since(start) < 20*time.Millisecond {
		t.Error("link override not applied")
	}
	// Reverse direction uses the default (free).
	start = time.Now()
	n.Transfer(context.Background(), "b", "a", 0)
	if time.Since(start) > 15*time.Millisecond {
		t.Error("override leaked to reverse direction")
	}
}

func TestCrossRackCost(t *testing.T) {
	n := New(LinkCost{})
	n.SetRack("a", "rack1")
	n.SetRack("b", "rack2")
	n.SetRack("c", "rack1")
	n.SetCrossRackCost(LinkCost{Latency: 30 * time.Millisecond})

	start := time.Now()
	n.Transfer(context.Background(), "a", "b", 0)
	if time.Since(start) < 20*time.Millisecond {
		t.Error("cross-rack cost not applied")
	}
	start = time.Now()
	n.Transfer(context.Background(), "a", "c", 0)
	if time.Since(start) > 15*time.Millisecond {
		t.Error("same-rack should use default cost")
	}
	if n.Rack("a") != "rack1" {
		t.Error("rack lookup")
	}
}

func TestTransferContextCancel(t *testing.T) {
	n := New(LinkCost{Latency: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := n.Transfer(ctx, "a", "b", 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("want deadline exceeded, got %v", err)
	}
}

func TestResetStats(t *testing.T) {
	n := New(LinkCost{})
	n.Transfer(context.Background(), "a", "b", 5)
	n.ResetStats()
	if st := n.Stats(); st.Messages != 0 || st.Bytes != 0 {
		t.Error("reset failed")
	}
}

func TestFaultScheduleDropsDeterministically(t *testing.T) {
	run := func(seed int64) []bool {
		n := New(LinkCost{})
		n.SetFaults(&Faults{Seed: seed, DropWindows: []DropWindow{{OpRange{0, 100}, 0.3}}})
		var out []bool
		for i := 0; i < 100; i++ {
			err := n.Transfer(context.Background(), "a", "b", 10)
			out = append(out, err != nil)
		}
		return out
	}
	a, b := run(9), run(9)
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transfer %d differs under same seed", i)
		}
		if a[i] {
			drops++
		}
	}
	if drops == 0 || drops == 100 {
		t.Errorf("drop rate 0.3 produced %d/100 drops", drops)
	}
	c := run(10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds yielded identical drop patterns")
	}
}

func TestFaultScheduleDropCounted(t *testing.T) {
	n := New(LinkCost{})
	n.SetFaults(&Faults{Seed: 1, DropWindows: []DropWindow{{OpRange{0, 10}, 1.0}}})
	err := n.Transfer(context.Background(), "a", "b", 1)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	if n.Stats().Drops != 1 {
		t.Errorf("stats = %+v", n.Stats())
	}
	n.SetFaults(nil)
	if err := n.Transfer(context.Background(), "a", "b", 1); err != nil {
		t.Errorf("cleared faults must pass: %v", err)
	}
}

func TestStreamLatencyPaidOncePerStream(t *testing.T) {
	n := New(LinkCost{Latency: 20 * time.Millisecond})

	s := n.Stream("a", "b")
	start := time.Now()
	if err := s.Send(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("first chunk did not pay link latency")
	}
	start = time.Now()
	for i := 0; i < 5; i++ {
		if err := s.Send(context.Background(), 100); err != nil {
			t.Fatal(err)
		}
	}
	if time.Since(start) > 15*time.Millisecond {
		t.Error("follow-up chunks paid latency again")
	}
	st := n.Stats()
	if st.Messages != 6 || st.Bytes != 600 {
		t.Errorf("stats = %+v, want 6 messages / 600 bytes", st)
	}
}

func TestStreamChunksPayBandwidth(t *testing.T) {
	n := New(LinkCost{Bandwidth: 1 << 20}) // 1 MiB/s
	s := n.Stream("a", "b")
	start := time.Now()
	for i := 0; i < 2; i++ {
		if err := s.Send(context.Background(), 1<<17); err != nil { // 128 KiB each -> ~125 ms
			t.Fatal(err)
		}
	}
	if time.Since(start) < 200*time.Millisecond {
		t.Error("bandwidth not applied per chunk")
	}
}

func TestStreamDownNodeMidStream(t *testing.T) {
	n := New(LinkCost{})
	s := n.Stream("a", "b")
	if err := s.Send(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	n.SetDown("b", true)
	if err := s.Send(context.Background(), 10); !errors.Is(err, ErrUnreachable) {
		t.Errorf("want ErrUnreachable mid-stream, got %v", err)
	}
}

func TestStreamFailedOpenRepaysLatency(t *testing.T) {
	n := New(LinkCost{Latency: 20 * time.Millisecond})
	n.SetDown("b", true)
	s := n.Stream("a", "b")
	if err := s.Send(context.Background(), 10); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("want ErrUnreachable, got %v", err)
	}
	n.SetDown("b", false)
	start := time.Now()
	if err := s.Send(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("retry after failed open did not repay latency")
	}
}

func TestStreamChunksHitFaultSchedule(t *testing.T) {
	n := New(LinkCost{})
	n.SetFaults(&Faults{Seed: 1, DropWindows: []DropWindow{{OpRange{0, 1000}, 1.0}}})
	s := n.Stream("a", "b")
	if err := s.Send(context.Background(), 10); !errors.Is(err, ErrUnreachable) {
		t.Errorf("chunk bypassed the fault schedule: %v", err)
	}
	if n.Stats().Drops != 1 {
		t.Errorf("stats = %+v", n.Stats())
	}
}

func TestStreamContextCancel(t *testing.T) {
	n := New(LinkCost{Latency: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	s := n.Stream("a", "b")
	if err := s.Send(ctx, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("want deadline exceeded, got %v", err)
	}
}
