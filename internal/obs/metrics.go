// Package obs is the unified observability layer: a lock-cheap metrics
// registry (counters, gauges, bounded-bucket histograms) that every
// subsystem registers into, and per-query hierarchical span tracing that
// feeds EXPLAIN PROFILE-style reports (trace.go).
//
// The package imports nothing from the rest of the system, so the lowest
// layers (objstore, resilience, netsim, cache) can build on it without
// cycles. All metric types have useful zero values and nil-safe methods:
// a subsystem embeds Counters directly and registers them into a shared
// Registry only when one is attached, and instrumented code paths never
// need to branch on "is observability on".
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64 metric. The zero value is
// ready to use; a nil *Counter discards all adds.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 metric: either set explicitly or
// computed on read by a function (for derived values like cache bytes).
// The zero value is ready to use; a nil *Gauge discards sets.
type Gauge struct {
	v  atomic.Int64
	fn func() int64
}

// Set stores the gauge value (ignored on function-backed gauges).
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n (ignored on function-backed gauges).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	if g.fn != nil {
		return g.fn()
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bucket 0 holds values <= 0 and
// bucket i (i >= 1) holds values in [2^(i-1), 2^i). 64 buckets cover the
// whole int64 range, so the histogram is bounded regardless of input.
const histBuckets = 64

// Histogram records an int64 value distribution (typically nanoseconds)
// in exponential buckets, cheap enough for hot paths: one atomic add per
// observation plus a CAS loop for the max. The zero value is ready to
// use; a nil *Histogram discards observations.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// HistStats is a point-in-time summary of a histogram.
type HistStats struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
}

// Mean returns the average observed value.
func (s HistStats) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the containing bucket. Estimates are upper-bounded by the true
// bucket boundary, so p99 of a distribution entirely inside one bucket
// reports at most 2x the true value.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i := 0; i < histBuckets; i++ {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lo, hi := bucketBounds(i)
			frac := 0.0
			if n > 0 {
				frac = (target - cum) / n
			}
			v := float64(lo) + frac*float64(hi-lo)
			// Compare in float64: the top bucket's upper bound rounds to
			// 2^63, which int64 conversion would overflow to MinInt64.
			if m := h.max.Load(); v >= float64(m) {
				return m
			}
			return int64(v)
		}
		cum += n
	}
	return h.max.Load()
}

// bucketBounds returns the [lo, hi) value range of bucket i.
func bucketBounds(i int) (int64, int64) {
	if i == 0 {
		return 0, 1
	}
	lo := int64(1) << (i - 1)
	if i == histBuckets-1 {
		return lo, 1<<62 + (1<<62 - 1) // clamp: top bucket is open-ended
	}
	return lo, int64(1) << i
}

// Counts returns a copy of the per-bucket observation counts. Two
// snapshots taken at different times can be differenced to recover the
// distribution of just the observations in between (see CountsQuantile),
// which is how the reconciler derives a windowed p95 from a cumulative
// histogram.
func (h *Histogram) Counts() []int64 {
	out := make([]int64, histBuckets)
	if h == nil {
		return out
	}
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// CountsQuantile estimates the q-quantile of a bucket-count vector laid
// out like Histogram.Counts (typically a difference of two snapshots).
// It returns 0 when the window holds no observations.
func CountsQuantile(counts []int64, q float64) int64 {
	var total int64
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i := 0; i < len(counts) && i < histBuckets; i++ {
		n := float64(counts[i])
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lo, hi := bucketBounds(i)
			frac := (target - cum) / n
			v := float64(lo) + frac*float64(hi-lo)
			// Same overflow guard as Quantile: the top bucket's upper
			// bound does not fit int64 after float64 rounding.
			if v >= float64(math.MaxInt64) {
				return math.MaxInt64
			}
			return int64(v)
		}
		cum += n
	}
	return 0
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistStats {
	if h == nil {
		return HistStats{}
	}
	return HistStats{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

