package core

import (
	"fmt"

	"eon/internal/sql"
	"eon/internal/types"
)

// PreparedStatement is a SELECT parsed and validated once and executable
// many times with different parameter values. Execution goes through the
// same staged lifecycle as Session.Query — the plan cache serves the
// bound plan (keyed by the statement's normalized text), so after the
// first execution at a given catalog version every subsequent Query call
// skips lexing, parsing and planning and only substitutes parameters
// into copies of the param-bearing plan nodes.
type PreparedStatement struct {
	session *Session
	sqlText string
	norm    string
	// sel is the pristine parsed AST; executions clone it on plan-cache
	// misses so planning never mutates the prepared state.
	sel     *sql.Select
	nparams int
}

// Prepare parses and validates a SELECT for repeated execution with bind
// parameters ("?" positional or $N ordinals).
func (s *Session) Prepare(sqlText string) (*PreparedStatement, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		s.db.parseErrors.Inc()
		return nil, err
	}
	sel, ok := stmt.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("core: Prepare requires a SELECT; use Execute for %T", stmt)
	}
	return &PreparedStatement{
		session: s,
		sqlText: sqlText,
		norm:    sql.Normalize(sqlText),
		sel:     sel,
		nparams: sql.NumParams(sel),
	}, nil
}

// NumParams returns the number of bind parameters the statement expects.
func (ps *PreparedStatement) NumParams() int { return ps.nparams }

// SQL returns the statement's original text.
func (ps *PreparedStatement) SQL() string { return ps.sqlText }

// Query executes the prepared statement with the given parameter values
// (args[i] binds $i+1).
func (ps *PreparedStatement) Query(args ...types.Datum) (*Result, error) {
	if len(args) != ps.nparams {
		return nil, fmt.Errorf("core: prepared statement takes %d parameters, got %d", ps.nparams, len(args))
	}
	// Hand the request a clone: tryQuery may plan it on a cache miss, and
	// planning binds column references in place.
	return ps.session.run(&queryRequest{
		sqlText: ps.sqlText,
		norm:    ps.norm,
		sel:     sql.CloneSelect(ps.sel),
		args:    args,
		nparams: ps.nparams,
	})
}
