package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSoakMembershipChurn drives the full membership lifecycle —
// add-spare, instance loss, promotion, removal, plus a kill/recover
// cycle — under a sustained query stream, and demands exactness
// throughout: every successful query returns the precise COUNT/SUM,
// and at the end nothing leaks (goroutines, exec slots, trace spans).
func TestSoakMembershipChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	before := runtime.NumGoroutine()

	db := newTestDB(t, ModeEon, 4, 4)
	const rows = 120
	setupSales(t, db, rows)
	var wantSum int64
	for i := 1; i <= rows; i++ {
		wantSum += int64(i)
	}
	// Warm the member depots so spare provisioning has peers to pull from.
	mustQuery(t, db.NewSession(), `SELECT COUNT(*) FROM sales`)

	var okCount, wrong, failed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(traced bool) {
			defer wg.Done()
			s := db.NewSession()
			s.Trace = traced
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.Query(`SELECT COUNT(*), SUM(sale_id) FROM sales`)
				if err != nil {
					failed.Add(1) // clean failures are fine mid-churn
					continue
				}
				row := res.Batch.Row(0)
				if row[0].I != rows || row[1].I != wantSum {
					wrong.Add(1)
				} else {
					okCount.Add(1)
				}
				if traced {
					if p := s.LastProfile(); p != nil && p.Dangling != 0 {
						wrong.Add(1) // span leak in the query path
					}
				}
			}
		}(w == 0)
	}

	churn := func(step string, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
	}
	settle := func() { time.Sleep(5 * time.Millisecond) }

	// Three full cycles: spare in, member dies (depot and all), spare
	// promoted over it, husk removed, plus one kill/recover round trip.
	victims := []string{"node2", "node3", "node4"}
	for i, victim := range victims {
		spare := "spare" + string(rune('1'+i))
		churn("AddSpare "+spare, db.AddSpare(NodeSpec{Name: spare}))
		settle()
		churn("WipeNode "+victim, db.WipeNode(victim))
		settle()
		churn("PromoteSpare "+spare, db.PromoteSpare(spare, ""))
		settle()
		churn("RemoveNode "+victim, db.RemoveNode(victim))
		settle()

		// One transient outage in the middle of the churn.
		if i == 1 {
			churn("KillNode node1", db.KillNode("node1"))
			settle()
			churn("RecoverNode node1", db.RecoverNode("node1"))
			settle()
		}
	}

	time.Sleep(20 * time.Millisecond) // keep the stream on final membership
	close(stop)
	wg.Wait()

	if n := wrong.Load(); n > 0 {
		t.Fatalf("%d queries returned wrong results during churn", n)
	}
	if okCount.Load() == 0 {
		t.Fatal("no query succeeded during the soak")
	}
	if db.IsShutdown() {
		t.Fatal("cluster shut down during churn")
	}
	// Final membership: node1 + three promoted spares, still exact.
	res := mustQuery(t, db.NewSession(), `SELECT COUNT(*), SUM(sale_id) FROM sales`)
	row := res.Batch.Row(0)
	if row[0].I != rows || row[1].I != wantSum {
		t.Fatalf("final result %d/%d, want %d/%d", row[0].I, row[1].I, rows, wantSum)
	}
	for _, name := range victims {
		if _, ok := db.Node(name); ok {
			t.Fatalf("%s still present after removal", name)
		}
	}

	// Nothing may leak: exec slots all returned...
	if n := db.SlotsOutstanding(); n != 0 {
		t.Fatalf("%d exec slots still held after the soak", n)
	}
	// ...and the worker goroutines (plus anything the churn spawned)
	// gone. Allow a little slack for runtime background goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
