package colenc

import (
	"math/rand"
	"sort"
	"testing"

	"eon/internal/types"
)

func benchVector(n int, sorted bool) *types.Vector {
	rng := rand.New(rand.NewSource(1))
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = rng.Int63n(1 << 20)
	}
	if sorted {
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	}
	v := types.NewVector(types.Int64, n)
	for _, x := range xs {
		v.Append(types.NewInt(x))
	}
	return v
}

func benchStrings(n, card int) *types.Vector {
	rng := rand.New(rand.NewSource(2))
	v := types.NewVector(types.Varchar, n)
	for i := 0; i < n; i++ {
		v.Append(types.NewString("value-" + string(rune('a'+rng.Intn(card)))))
	}
	return v
}

func BenchmarkEncodeInts(b *testing.B) {
	for _, tc := range []struct {
		name   string
		enc    Encoding
		sorted bool
	}{
		{"plain", Plain, false},
		{"for", FOR, false},
		{"delta-sorted", Delta, true},
		{"rle-sorted", RLE, true},
	} {
		v := benchVector(8192, tc.sorted)
		b.Run(tc.name, func(b *testing.B) {
			b.SetBytes(8192 * 8)
			for i := 0; i < b.N; i++ {
				Encode(v, tc.enc)
			}
		})
	}
}

func BenchmarkDecodeInts(b *testing.B) {
	for _, tc := range []struct {
		name string
		enc  Encoding
	}{
		{"plain", Plain}, {"for", FOR}, {"delta", Delta},
	} {
		v := benchVector(8192, tc.enc == Delta)
		data := Encode(v, tc.enc)
		b.Run(tc.name, func(b *testing.B) {
			b.SetBytes(8192 * 8)
			for i := 0; i < b.N; i++ {
				if _, err := Decode(data, types.Int64); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEncodeDictStrings(b *testing.B) {
	v := benchStrings(8192, 8)
	b.ReportMetric(float64(len(Encode(v, Dict))), "bytes")
	for i := 0; i < b.N; i++ {
		Encode(v, Dict)
	}
}

// Compression ratios on sorted data, reported as metrics.
func BenchmarkCompressionRatio(b *testing.B) {
	v := benchVector(8192, true)
	plain := len(Encode(v, Plain))
	for _, tc := range []struct {
		name string
		enc  Encoding
	}{
		{"delta", Delta}, {"for", FOR}, {"rle", RLE},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				size = len(Encode(v, tc.enc))
			}
			b.ReportMetric(float64(plain)/float64(size), "x_vs_plain")
		})
	}
}
