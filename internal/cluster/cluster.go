// Package cluster implements the Eon-mode durability and revive machinery
// of paper §3.5: node instance identifiers (the 120-bit random component
// of storage IDs), cluster incarnation UUIDs, the cluster_info.json
// commit-point file with its lease, per-node catalog sync intervals, and
// the consensus truncation-version computation of Figure 5.
package cluster

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// InstanceID is the 120-bit strongly random identifier generated when a
// node process starts (paper §5.1, Figure 7). It prefixes every storage
// ID the process creates, so clusters cloned from the same files still
// generate globally unique names.
type InstanceID string

// NewInstanceID draws a fresh 120-bit random identifier.
func NewInstanceID() InstanceID {
	var b [15]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("cluster: cannot read randomness: %v", err))
	}
	return InstanceID(hex.EncodeToString(b[:]))
}

// IncarnationID is the 128-bit UUID that changes each time the cluster is
// revived, qualifying metadata uploads so each revived cluster writes to
// a distinct location (§3.5).
type IncarnationID string

// NewIncarnationID draws a fresh incarnation UUID (RFC 4122 v4 layout).
func NewIncarnationID() IncarnationID {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("cluster: cannot read randomness: %v", err))
	}
	b[6] = (b[6] & 0x0f) | 0x40
	b[8] = (b[8] & 0x3f) | 0x80
	u := hex.EncodeToString(b[:])
	return IncarnationID(u[0:8] + "-" + u[8:12] + "-" + u[12:16] + "-" + u[16:20] + "-" + u[20:32])
}

// InfoFileName is the shared-storage object holding the cluster's revive
// commit point.
const InfoFileName = "cluster_info.json"

// Info is the contents of cluster_info.json: "in addition to the
// truncation version, the file also contains a timestamp, node and
// database information, and a lease time" (§3.5). Writing it is the
// commit point for revive.
type Info struct {
	Database          string        `json:"database"`
	Incarnation       IncarnationID `json:"incarnation"`
	TruncationVersion uint64        `json:"truncationVersion"`
	Nodes             []string      `json:"nodes"`
	Timestamp         time.Time     `json:"timestamp"`
	LeaseExpiry       time.Time     `json:"leaseExpiry"`
}

// Marshal serializes the info file.
func (i *Info) Marshal() ([]byte, error) { return json.MarshalIndent(i, "", "  ") }

// ParseInfo deserializes cluster_info.json bytes.
func ParseInfo(data []byte) (*Info, error) {
	var i Info
	if err := json.Unmarshal(data, &i); err != nil {
		return nil, fmt.Errorf("cluster: parse %s: %w", InfoFileName, err)
	}
	return &i, nil
}

// LeaseValid reports whether the lease is still held at now; revive must
// abort while another cluster plausibly runs on the same shared storage.
func (i *Info) LeaseValid(now time.Time) bool {
	return now.Before(i.LeaseExpiry)
}

// SyncInterval is the range of catalog versions a node could revive to
// from its uploads: uploaded checkpoints raise the lower bound, uploaded
// transaction logs raise the upper bound (§3.5).
type SyncInterval struct {
	Lower uint64 // oldest version reachable (latest uploaded checkpoint)
	Upper uint64 // newest version reachable (last uploaded txn log)
}

// Contains reports whether the node can revive to version v.
func (s SyncInterval) Contains(v uint64) bool { return v >= s.Lower && v <= s.Upper }

// SyncTracker aggregates per-node sync intervals on the leader.
type SyncTracker struct {
	mu        sync.Mutex
	intervals map[string]SyncInterval
}

// NewSyncTracker returns an empty tracker.
func NewSyncTracker() *SyncTracker {
	return &SyncTracker{intervals: map[string]SyncInterval{}}
}

// Update records a node's current sync interval.
func (t *SyncTracker) Update(node string, iv SyncInterval) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.intervals[node] = iv
}

// Get returns a node's last reported interval.
func (t *SyncTracker) Get(node string) (SyncInterval, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	iv, ok := t.intervals[node]
	return iv, ok
}

// Snapshot copies the tracked intervals.
func (t *SyncTracker) Snapshot() map[string]SyncInterval {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]SyncInterval, len(t.intervals))
	for k, v := range t.intervals {
		out[k] = v
	}
	return out
}

// ComputeTruncationVersion implements Figure 5: for each shard, the best
// version any subscriber has durably uploaded (the max of subscriber
// upper bounds); the consensus truncation version is the minimum of
// those across shards — the highest version at which every shard's
// metadata is fully present on shared storage. ok is false when some
// shard has no subscriber with an upload.
func ComputeTruncationVersion(shardSubscribers map[int][]string, intervals map[string]SyncInterval) (uint64, bool) {
	if len(shardSubscribers) == 0 {
		return 0, false
	}
	consensus := ^uint64(0)
	for _, subs := range shardSubscribers {
		best, found := uint64(0), false
		for _, node := range subs {
			if iv, ok := intervals[node]; ok && (!found || iv.Upper > best) {
				best, found = iv.Upper, true
			}
		}
		if !found {
			return 0, false // a shard with no subscriber upload blocks consensus
		}
		if best < consensus {
			consensus = best
		}
	}
	return consensus, true
}
