// Package parallel provides the bounded fan-out primitive used by the
// scan and upload hot paths: run n independent work items through a
// fixed-size worker pool, cancel the rest on the first error, and return
// that error. It is errgroup-shaped but passes each worker its identity,
// so callers can keep cheap per-worker scratch state (hash buffers,
// rings) without synchronization.
package parallel

import (
	"context"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(ctx, worker, idx) for every idx in [0, n) using at most
// conc concurrent workers. Workers are numbered 0..conc-1; each index is
// processed by exactly one worker. On the first error the shared context
// is canceled, remaining unstarted items are skipped, and the first error
// is returned. With conc <= 1 (or n <= 1) the items run serially on the
// caller's goroutine in index order.
func ForEach(ctx context.Context, n, conc int, fn func(ctx context.Context, worker, idx int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if conc > n {
		conc = n
	}
	if conc <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, 0, i); err != nil {
				return err
			}
		}
		return nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	wg.Add(conc)
	for w := 0; w < conc; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= n {
					return
				}
				if err := wctx.Err(); err != nil {
					return
				}
				if err := fn(wctx, worker, idx); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
