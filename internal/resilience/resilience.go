// Package resilience is the fault-tolerance substrate for shared-storage
// access (paper §5.3: "any filesystem access can and will fail", and
// queries must stay cancelable while the store throttles and flakes).
//
// It layers three mechanisms over any object-store-shaped API:
//
//   - Policy: capped exponential backoff with full jitter and a
//     per-operation deadline budget carved from the caller's context.
//   - Hedged reads: after a configurable delay a backup request is
//     issued and the first success wins, absorbing the heavy latency
//     tail of shared-storage GETs.
//   - Breaker: a circuit breaker that trips on sustained retryable
//     failure rates, sheds retries while open (so retry storms cannot
//     amplify an S3 SlowDown), and half-opens probabilistically.
//
// The package deliberately imports nothing from the rest of the system
// (only the foundational internal/obs metric types) so the lower layers
// (objstore) can build on it without cycles; the error classifier is
// injected by the caller.
package resilience

import (
	"errors"
	"sync"
	"time"

	"eon/internal/obs"
)

// ErrOpen is returned without touching the underlying store while a
// circuit breaker is open: retries are shed, not issued.
var ErrOpen = errors.New("resilience: circuit breaker open")

// Stats is a snapshot of resilience counters.
type Stats struct {
	// Attempts counts operations issued to the underlying store,
	// including retries and hedges.
	Attempts int64
	// Retries counts attempts beyond the first for an operation.
	Retries int64
	// Failures counts attempts that returned a retryable error.
	Failures int64
	// HedgesFired counts backup requests launched after the hedge delay.
	HedgesFired int64
	// HedgesWon counts hedged operations where the backup finished first.
	HedgesWon int64
	// BreakerOpens counts closed->open breaker transitions.
	BreakerOpens int64
	// Shed counts operations rejected while a breaker was open.
	Shed int64
	// Probes counts half-open trial requests allowed through.
	Probes int64
	// Fallbacks counts graceful degradations: reads that skipped a
	// failing layer (peer or cache) and went straight to shared storage.
	Fallbacks int64
}

// Counters accumulates Stats atomically. The zero value is ready to use;
// a nil *Counters discards all counts. The fields are obs metrics so a
// database can Register them into its registry and read live values
// without a parallel bookkeeping path.
type Counters struct {
	attempts, retries, failures obs.Counter
	hedgesFired, hedgesWon      obs.Counter
	breakerOpens, shed, probes  obs.Counter
	fallbacks                   obs.Counter
}

// Register publishes the counters into reg under prefix (e.g.
// "resilience."). A nil receiver or registry is a no-op.
func (c *Counters) Register(reg *obs.Registry, prefix string) {
	if c == nil || reg == nil {
		return
	}
	reg.RegisterCounter(prefix+"attempts", &c.attempts)
	reg.RegisterCounter(prefix+"retries", &c.retries)
	reg.RegisterCounter(prefix+"failures", &c.failures)
	reg.RegisterCounter(prefix+"hedges_fired", &c.hedgesFired)
	reg.RegisterCounter(prefix+"hedges_won", &c.hedgesWon)
	reg.RegisterCounter(prefix+"breaker_opens", &c.breakerOpens)
	reg.RegisterCounter(prefix+"shed", &c.shed)
	reg.RegisterCounter(prefix+"probes", &c.probes)
	reg.RegisterCounter(prefix+"fallbacks", &c.fallbacks)
}

// Attempt records one issued operation attempt.
func (c *Counters) Attempt() {
	if c != nil {
		c.attempts.Add(1)
	}
}

// Retry records an attempt beyond the first.
func (c *Counters) Retry() {
	if c != nil {
		c.retries.Add(1)
	}
}

// Failure records an attempt that failed with a retryable error.
func (c *Counters) Failure() {
	if c != nil {
		c.failures.Add(1)
	}
}

// HedgeFired records a launched backup request.
func (c *Counters) HedgeFired() {
	if c != nil {
		c.hedgesFired.Add(1)
	}
}

// HedgeWon records a hedged operation won by the backup request.
func (c *Counters) HedgeWon() {
	if c != nil {
		c.hedgesWon.Add(1)
	}
}

// BreakerOpened records a closed->open transition.
func (c *Counters) BreakerOpened() {
	if c != nil {
		c.breakerOpens.Add(1)
	}
}

// Shed records an operation rejected by an open breaker.
func (c *Counters) Shed() {
	if c != nil {
		c.shed.Add(1)
	}
}

// Probe records a half-open trial request.
func (c *Counters) Probe() {
	if c != nil {
		c.probes.Add(1)
	}
}

// Fallback records a graceful degradation to shared storage.
func (c *Counters) Fallback() {
	if c != nil {
		c.fallbacks.Add(1)
	}
}

// Snapshot returns the current counter values.
func (c *Counters) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Attempts:     c.attempts.Value(),
		Retries:      c.retries.Value(),
		Failures:     c.failures.Value(),
		HedgesFired:  c.hedgesFired.Value(),
		HedgesWon:    c.hedgesWon.Value(),
		BreakerOpens: c.breakerOpens.Value(),
		Shed:         c.shed.Value(),
		Probes:       c.probes.Value(),
		Fallbacks:    c.fallbacks.Value(),
	}
}

// lockedRand is a small goroutine-safe linear-congruential source; the
// quality bar is "spread retry wakeups", not cryptography, and keeping it
// local avoids fighting over math/rand's global lock.
type lockedRand struct {
	mu    sync.Mutex
	state uint64
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{state: uint64(seed)*2862933555777941757 + 3037000493}
}

// float64 returns a uniform value in [0, 1).
func (r *lockedRand) float64() float64 {
	r.mu.Lock()
	r.state = r.state*6364136223846793005 + 1442695040888963407
	v := r.state >> 11 // top 53 bits
	r.mu.Unlock()
	return float64(v) / (1 << 53)
}

// durationIn returns a uniform duration in [0, max).
func (r *lockedRand) durationIn(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(r.float64() * float64(max))
}
