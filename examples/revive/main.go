// Revive: durability from shared storage (paper §3.5). The cluster
// uploads its catalog on a sync interval; after the compute instances
// are gone, a brand-new cluster revives from the shared storage alone —
// discarding any commits past the consensus truncation version.
package main

import (
	"fmt"
	"log"

	"eon"
)

func main() {
	shared := eon.NewMemStore() // stands in for an S3 bucket

	db, err := eon.Create(eon.Config{
		Mode: eon.ModeEon,
		Nodes: []eon.NodeSpec{
			{Name: "node1"}, {Name: "node2"}, {Name: "node3"},
		},
		ShardCount: 3,
		Shared:     shared,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := db.NewSession()
	mustExec(s, `CREATE TABLE events (id INTEGER, kind VARCHAR)`)
	mustExec(s, `INSERT INTO events VALUES (1, 'signup'), (2, 'login'), (3, 'purchase')`)

	// Catalog sync: transaction logs upload, the leader computes the
	// consensus truncation version (Figure 5) and writes
	// cluster_info.json.
	if err := db.SyncMetadata(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synced: truncation version %d, incarnation %s\n",
		db.TruncationVersion(), db.Internal().Incarnation())

	// A commit after the last sync: durable as data (files uploaded
	// before commit) but its *metadata* has not reached shared storage.
	mustExec(s, `INSERT INTO events VALUES (4, 'lost-on-catastrophe')`)

	// Clean shutdown uploads the remaining logs, so nothing is lost.
	if err := db.Shutdown(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("cluster shut down")

	// Revive a brand-new cluster from the shared storage only.
	db2, err := eon.Revive(eon.Config{Shared: shared})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("revived: new incarnation %s\n", db2.Internal().Incarnation())
	res, err := db2.NewSession().Query(`SELECT COUNT(*) FROM events`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("events after clean shutdown + revive: %s (all 4 present)\n", res.Rows()[0][0])

	// The revived cluster is fully writable.
	mustExec(db2.NewSession(), `INSERT INTO events VALUES (5, 'post-revive')`)
	res, _ = db2.NewSession().Query(`SELECT COUNT(*) FROM events`)
	fmt.Printf("events after new insert: %s\n", res.Rows()[0][0])
}

func mustExec(s *eon.Session, sql string) {
	if _, err := s.Execute(sql); err != nil {
		log.Fatal(err)
	}
}
