package core

import (
	"fmt"

	"eon/internal/catalog"
)

// fileReferenceCount counts catalog references to each storage file
// across containers and delete vectors — the reference counter of §6.5.
// Operations like CopyTable make several containers share one file, so a
// container drop may not free its files.
func fileReferenceCount(snap *catalog.Snapshot) map[string]int {
	refs := map[string]int{}
	snap.ForEach(catalog.KindStorageContainer, func(o catalog.Object) bool {
		for _, f := range o.(*catalog.StorageContainer).AllFiles() {
			refs[f.Path]++
		}
		return true
	})
	snap.ForEach(catalog.KindDeleteVector, func(o catalog.Object) bool {
		refs[o.(*catalog.DeleteVector).File.Path]++
		return true
	})
	return refs
}

// queueContainerFilesIfUnreferenced queues a dropped container's files
// for deletion only when the post-drop snapshot holds no remaining
// references (the file may be shared with a copied table or another
// partition's clone).
func (db *DB) queueContainerFilesIfUnreferenced(snap *catalog.Snapshot, sc *catalog.StorageContainer, dvs []*catalog.DeleteVector, dropVersion uint64) {
	ctx := db.Context()
	refs := fileReferenceCount(snap)
	for _, f := range sc.AllFiles() {
		if refs[f.Path] == 0 {
			db.deleteDataFile(ctx, f.Path, dropVersion)
		}
	}
	for _, dv := range dvs {
		if refs[dv.File.Path] == 0 {
			db.deleteDataFile(ctx, dv.File.Path, dropVersion)
		}
	}
}

// CopyTable creates dst as a snapshot copy of src. The new table's
// containers reference the same immutable storage files — no data is
// read or written (§5.1: "Vertica supports operations like copy_table
// ... which can reference the same storage in multiple tables, so
// storage is not tied to a specific table"). Globally unique storage
// identifiers make this safe without persistent name mappings.
func (db *DB) CopyTable(src, dst string) error {
	init, err := db.anyUpNode()
	if err != nil {
		return err
	}
	txn := init.catalog.Begin()
	snap := txn.Base()
	srcTbl, ok := snap.TableByName(src)
	if !ok {
		return fmt.Errorf("core: unknown table %q", src)
	}
	if _, exists := snap.TableByName(dst); exists {
		return fmt.Errorf("core: table %q already exists", dst)
	}
	dstTbl := srcTbl.Clone().(*catalog.Table)
	dstTbl.OID = init.catalog.NewOID()
	dstTbl.Name = dst
	txn.Put(dstTbl)

	for _, p := range snap.ProjectionsOf(srcTbl.OID) {
		dp := p.Clone().(*catalog.Projection)
		dp.OID = init.catalog.NewOID()
		dp.TableOID = dstTbl.OID
		dp.Name = dst + "_" + p.Name
		if p.BaseOID != 0 {
			// Buddy links are re-established below only when the base
			// was already copied; keep ordering simple by copying bases
			// first (ProjectionsOf returns them first).
			dp.BaseOID = 0
		}
		txn.Put(dp)
		for _, sc := range snap.ContainersOf(p.OID, catalog.GlobalShard) {
			dc := sc.Clone().(*catalog.StorageContainer)
			dc.OID = init.catalog.NewOID()
			dc.ProjOID = dp.OID
			dc.TableOID = dstTbl.OID
			dc.CreateVersion = snap.Version() + 1
			// Files are shared by reference; nothing is copied.
			txn.Put(dc)
			for _, dv := range snap.DeleteVectorsOf(sc.OID) {
				ddv := dv.Clone().(*catalog.DeleteVector)
				ddv.OID = init.catalog.NewOID()
				ddv.ContainerOID = dc.OID
				ddv.ProjOID = dp.OID
				txn.Put(ddv)
			}
		}
	}
	_, err = db.commit(init, txn, nil)
	return err
}

// DropPartition removes every container of a table whose partition key
// matches (§2.1's quick file pruning makes this a metadata-only
// operation; files free when unreferenced).
func (db *DB) DropPartition(table, partitionKey string) (int, error) {
	init, err := db.anyUpNode()
	if err != nil {
		return 0, err
	}
	txn := init.catalog.Begin()
	snap := txn.Base()
	tbl, ok := snap.TableByName(table)
	if !ok {
		return 0, fmt.Errorf("core: unknown table %q", table)
	}
	type droppedC struct {
		sc  *catalog.StorageContainer
		dvs []*catalog.DeleteVector
	}
	var dropped []droppedC
	for _, p := range snap.ProjectionsOf(tbl.OID) {
		for _, sc := range snap.ContainersOf(p.OID, catalog.GlobalShard) {
			if sc.PartitionKey != partitionKey {
				continue
			}
			d := droppedC{sc: sc, dvs: snap.DeleteVectorsOf(sc.OID)}
			for _, dv := range d.dvs {
				txn.Delete(dv.OID)
			}
			txn.Delete(sc.OID)
			dropped = append(dropped, d)
		}
	}
	if len(dropped) == 0 {
		return 0, nil
	}
	rec, err := db.commit(init, txn, nil)
	if err != nil {
		return 0, err
	}
	after := init.catalog.Snapshot()
	for _, d := range dropped {
		db.queueContainerFilesIfUnreferenced(after, d.sc, d.dvs, rec.Version)
	}
	return len(dropped), nil
}

// MovePartition moves a partition's containers from src to dst — a
// metadata-only retagging, legal when both tables have structurally
// identical projections (same columns, sort keys and segmentation).
func (db *DB) MovePartition(src, dst, partitionKey string) (int, error) {
	init, err := db.anyUpNode()
	if err != nil {
		return 0, err
	}
	txn := init.catalog.Begin()
	snap := txn.Base()
	srcTbl, ok := snap.TableByName(src)
	if !ok {
		return 0, fmt.Errorf("core: unknown table %q", src)
	}
	dstTbl, ok := snap.TableByName(dst)
	if !ok {
		return 0, fmt.Errorf("core: unknown table %q", dst)
	}
	srcProjs := snap.ProjectionsOf(srcTbl.OID)
	dstProjs := snap.ProjectionsOf(dstTbl.OID)

	// Pair src projections with structurally identical dst projections.
	match := map[catalog.OID]*catalog.Projection{}
	for _, sp := range srcProjs {
		var found *catalog.Projection
		for _, dp := range dstProjs {
			if projStructEqual(sp, dp) && match[sp.OID] == nil {
				used := false
				for _, m := range match {
					if m.OID == dp.OID {
						used = true
						break
					}
				}
				if !used {
					found = dp
					break
				}
			}
		}
		if found == nil {
			return 0, fmt.Errorf("core: no projection of %q matches %q structurally", dst, sp.Name)
		}
		match[sp.OID] = found
	}

	moved := 0
	for _, sp := range srcProjs {
		dp := match[sp.OID]
		for _, sc := range snap.ContainersOf(sp.OID, catalog.GlobalShard) {
			if sc.PartitionKey != partitionKey {
				continue
			}
			mc := sc.Clone().(*catalog.StorageContainer)
			mc.ProjOID = dp.OID
			mc.TableOID = dstTbl.OID
			txn.Put(mc)
			for _, dv := range snap.DeleteVectorsOf(sc.OID) {
				mdv := dv.Clone().(*catalog.DeleteVector)
				mdv.ProjOID = dp.OID
				txn.Put(mdv)
			}
			moved++
		}
	}
	if moved == 0 {
		return 0, nil
	}
	_, err = db.commit(init, txn, nil)
	return moved, err
}

// projStructEqual compares projection structure (columns, sort,
// segmentation) ignoring names.
func projStructEqual(a, b *catalog.Projection) bool {
	if len(a.Columns) != len(b.Columns) || len(a.SortKey) != len(b.SortKey) || len(a.SegmentCols) != len(b.SegmentCols) {
		return false
	}
	if a.BuddyOffset != b.BuddyOffset {
		return false
	}
	for i := range a.Columns {
		if !equalFoldStr(a.Columns[i], b.Columns[i]) {
			return false
		}
	}
	for i := range a.SortKey {
		if !equalFoldStr(a.SortKey[i], b.SortKey[i]) {
			return false
		}
	}
	for i := range a.SegmentCols {
		if !equalFoldStr(a.SegmentCols[i], b.SegmentCols[i]) {
			return false
		}
	}
	return true
}

func equalFoldStr(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
