// Package hashring implements the 32-bit hash space that underlies both
// Enterprise-mode projection segmentation and Eon-mode segment shards.
//
// Each record's segmentation key is hashed into a 32-bit space. In
// Enterprise mode contiguous regions of the space are mapped to nodes by
// each projection (with a rotated "buddy" layout for fault tolerance). In
// Eon mode the space is statically divided at database creation into
// segment shards; all storage whose tuples hash into a shard's region is
// associated with that shard (paper §2.2, §3.1, Figure 3).
package hashring

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"eon/internal/types"
)

// SpaceSize is the size of the hash space: hashes are in [0, SpaceSize).
const SpaceSize = uint64(1) << 32

// HashDatum hashes a single datum into the 32-bit space. The hash is
// deterministic across processes so that segmentation is stable.
func HashDatum(d types.Datum) uint32 {
	h := fnv.New32a()
	writeDatum(h, d)
	return h.Sum32()
}

// HashRowCols hashes the given column positions of a row, in order. This is
// the SEGMENTED BY HASH(col, ...) function.
func HashRowCols(r types.Row, cols []int) uint32 {
	h := fnv.New32a()
	for _, c := range cols {
		writeDatum(h, r[c])
	}
	return h.Sum32()
}

// HashBatchCols hashes the given column positions for every row of a batch,
// appending the hashes to dst and returning it.
func HashBatchCols(b *types.Batch, cols []int, dst []uint32) []uint32 {
	n := b.NumRows()
	for i := 0; i < n; i++ {
		h := fnv.New32a()
		for _, c := range cols {
			writeDatum(h, b.Cols[c].Datum(i))
		}
		dst = append(dst, h.Sum32())
	}
	return dst
}

type hashWriter interface {
	Write(p []byte) (int, error)
}

func writeDatum(h hashWriter, d types.Datum) {
	var buf [9]byte
	if d.Null {
		buf[0] = 0
		h.Write(buf[:1])
		return
	}
	switch d.K.Physical() {
	case types.Int64:
		buf[0] = 1
		binary.LittleEndian.PutUint64(buf[1:], uint64(d.I))
		h.Write(buf[:9])
	case types.Float64:
		buf[0] = 2
		binary.LittleEndian.PutUint64(buf[1:], math.Float64bits(d.F))
		h.Write(buf[:9])
	case types.Varchar:
		buf[0] = 3
		h.Write(buf[:1])
		h.Write([]byte(d.S))
	case types.Bool:
		buf[0] = 4
		if d.B {
			buf[1] = 1
		}
		h.Write(buf[:2])
	}
}

// Segment is a contiguous half-open region [Start, End) of the hash space.
// End is exclusive and expressed in the 33-bit range so the final segment
// can end exactly at SpaceSize.
type Segment struct {
	Start uint64
	End   uint64
}

// Contains reports whether hash h falls in the segment.
func (s Segment) Contains(h uint32) bool {
	v := uint64(h)
	return v >= s.Start && v < s.End
}

// Ring divides the hash space into n equal contiguous segments, numbered
// 0..n-1 in hash order. Both modes use the same division; Eon calls the
// segments "shards".
type Ring struct {
	segments []Segment
}

// NewRing returns a ring with n segments. n must be >= 1.
func NewRing(n int) *Ring {
	if n < 1 {
		panic("hashring: ring must have at least one segment")
	}
	segs := make([]Segment, n)
	for i := 0; i < n; i++ {
		segs[i] = Segment{
			Start: SpaceSize * uint64(i) / uint64(n),
			End:   SpaceSize * uint64(i+1) / uint64(n),
		}
	}
	return &Ring{segments: segs}
}

// Count returns the number of segments.
func (r *Ring) Count() int { return len(r.segments) }

// Segment returns segment i's region.
func (r *Ring) Segment(i int) Segment { return r.segments[i] }

// SegmentFor returns the index of the segment containing hash h.
func (r *Ring) SegmentFor(h uint32) int {
	n := uint64(len(r.segments))
	idx := int(uint64(h) * n / SpaceSize)
	// Guard against boundary rounding: the computed index is correct for
	// equal divisions, but verify and adjust to keep the invariant exact.
	for idx > 0 && uint64(h) < r.segments[idx].Start {
		idx--
	}
	for idx < len(r.segments)-1 && uint64(h) >= r.segments[idx].End {
		idx++
	}
	return idx
}

// SegmentForRow hashes the given columns of the row and returns the owning
// segment index.
func (r *Ring) SegmentForRow(row types.Row, cols []int) int {
	return r.SegmentFor(HashRowCols(row, cols))
}

// BuddyLayout computes the Enterprise-mode node placement for a projection
// and its buddy. Segment i of the base projection lives on node i mod N;
// the buddy layout is the logical ring rotated by offset, so adjacent nodes
// serve as replicas (paper §2.2).
type BuddyLayout struct {
	Nodes  int
	Offset int
}

// BaseNode returns the node index serving segment seg in the base
// projection.
func (b BuddyLayout) BaseNode(seg int) int { return seg % b.Nodes }

// BuddyNode returns the node index serving segment seg in the buddy
// projection.
func (b BuddyLayout) BuddyNode(seg int) int { return (seg + b.Offset) % b.Nodes }
