// Package systable is the virtual-table layer behind the v_monitor
// schema: SQL-queryable system tables materialized on scan from live
// monitoring state (the Vertica pattern — operators diagnose the system
// with the system). A Def pairs a qualified table name and schema with a
// Fill function that takes a consistent snapshot cut of whatever state
// it exposes; the Registry hands the planner synthesized catalog.Table
// handles (OID 0 — virtual tables live outside the transactional
// catalog) so ordinary SELECTs plan against them, and hands the executor
// the Fill to materialize one batch on the initiator at scan time.
//
// Fill functions must follow the scan discipline: capture a snapshot
// (registry Snapshot, DC ring Snapshot, catalog Snapshot), never hold a
// hot-path lock while building rows, and tolerate concurrent mutation
// of the underlying state.
package systable

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"eon/internal/catalog"
	"eon/internal/obs"
	"eon/internal/types"
)

// SchemaName is the virtual schema every table registers under.
const SchemaName = "v_monitor"

// Def is one virtual table.
type Def struct {
	// Name is the qualified table name, e.g. "v_monitor.metrics".
	Name string
	// Columns is the table schema (unqualified column names).
	Columns types.Schema
	// Fill materializes the table's current contents as one batch over
	// Columns. Called on the initiator once per scan.
	Fill func() (*types.Batch, error)
}

// Registry maps virtual table names to defs and synthesizes the catalog
// handles the planner resolves against. Registration happens at
// database setup; lookups are read-mostly.
type Registry struct {
	mu     sync.RWMutex
	defs   map[string]*Def
	tables map[string]*catalog.Table
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{defs: map[string]*Def{}, tables: map[string]*catalog.Table{}}
}

// Register adds a virtual table. The name must be qualified with the
// v_monitor schema and unused.
func (r *Registry) Register(d *Def) error {
	if r == nil {
		return fmt.Errorf("systable: nil registry")
	}
	name := strings.ToLower(d.Name)
	if !strings.HasPrefix(name, SchemaName+".") {
		return fmt.Errorf("systable: table %q outside the %s schema", d.Name, SchemaName)
	}
	if len(d.Columns) == 0 || d.Fill == nil {
		return fmt.Errorf("systable: table %q needs columns and a fill function", d.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.defs[name]; ok {
		return fmt.Errorf("systable: table %q already registered", d.Name)
	}
	r.defs[name] = d
	// OID 0: virtual tables are not catalog objects; the planner treats
	// the synthesized handle as metadata only.
	r.tables[name] = &catalog.Table{Name: name, Columns: d.Columns}
	return nil
}

// LookupVirtual resolves a table name to its synthesized catalog handle.
// It implements the planner's virtual-table resolver hook.
func (r *Registry) LookupVirtual(name string) (*catalog.Table, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tables[strings.ToLower(name)]
	return t, ok
}

// Def returns the registered def for a table name.
func (r *Registry) Def(name string) (*Def, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.defs[strings.ToLower(name)]
	return d, ok
}

// Fill materializes the named table. The returned batch's columns are
// in Def.Columns order.
func (r *Registry) Fill(name string) (*types.Batch, error) {
	d, ok := r.Def(name)
	if !ok {
		return nil, fmt.Errorf("systable: unknown virtual table %q", name)
	}
	b, err := d.Fill()
	if err != nil {
		return nil, fmt.Errorf("systable: fill %s: %w", d.Name, err)
	}
	if b == nil {
		b = types.NewBatch(d.Columns, 0)
	}
	if len(b.Cols) != len(d.Columns) {
		return nil, fmt.Errorf("systable: %s fill produced %d columns, schema has %d", d.Name, len(b.Cols), len(d.Columns))
	}
	return b, nil
}

// Names lists registered tables, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]string, 0, len(r.defs))
	for n := range r.defs {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// DCTableName maps a Data Collector ring name to its system table name.
func DCTableName(ring string) string { return SchemaName + ".dc_" + ring }

// DCDef builds the Def for one Data Collector ring: schema derived from
// the ring's column definition (time, node, then the used string and
// integer fields), filled from a ring snapshot cut.
func DCDef(r *obs.DCRing) *Def {
	def := r.Def()
	cols := types.Schema{
		{Name: "time", Type: types.Timestamp},
		{Name: "node", Type: types.Varchar},
	}
	if def.ACol != "" {
		cols = append(cols, types.Column{Name: def.ACol, Type: types.Varchar})
	}
	if def.BCol != "" {
		cols = append(cols, types.Column{Name: def.BCol, Type: types.Varchar})
	}
	for _, v := range def.VCols {
		cols = append(cols, types.Column{Name: v, Type: types.Int64})
	}
	return &Def{
		Name:    DCTableName(def.Name),
		Columns: cols,
		Fill: func() (*types.Batch, error) {
			evs := r.Snapshot()
			b := types.NewBatch(cols, len(evs))
			for _, e := range evs {
				row := types.Row{types.NewTimestamp(e.TimeNS / 1000), types.NewString(e.Node)}
				if def.ACol != "" {
					row = append(row, types.NewString(e.A))
				}
				if def.BCol != "" {
					row = append(row, types.NewString(e.B))
				}
				vs := [4]int64{e.V1, e.V2, e.V3, e.V4}
				for i := range def.VCols {
					row = append(row, types.NewInt(vs[i]))
				}
				b.AppendRow(row)
			}
			return b, nil
		},
	}
}

// RegisterDC registers the dc_* table of every ring in the collector.
func RegisterDC(reg *Registry, dc *obs.DataCollector) error {
	for _, ring := range dc.Rings() {
		if err := reg.Register(DCDef(ring)); err != nil {
			return err
		}
	}
	return nil
}

// MetricsDef builds v_monitor.metrics over a snapshot source: one row
// per counter, gauge and histogram, with the percentile summary columns
// populated for histograms.
func MetricsDef(snapshot func() obs.Snapshot) *Def {
	cols := types.Schema{
		{Name: "name", Type: types.Varchar},
		{Name: "kind", Type: types.Varchar},
		{Name: "value", Type: types.Int64},
		{Name: "count", Type: types.Int64},
		{Name: "sum", Type: types.Int64},
		{Name: "max", Type: types.Int64},
		{Name: "p50", Type: types.Int64},
		{Name: "p95", Type: types.Int64},
		{Name: "p99", Type: types.Int64},
	}
	return &Def{
		Name:    SchemaName + ".metrics",
		Columns: cols,
		Fill: func() (*types.Batch, error) {
			s := snapshot()
			b := types.NewBatch(cols, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
			null := types.NullDatum(types.Int64)
			appendRow := func(name, kind string, value types.Datum, h *obs.HistStats) {
				row := types.Row{types.NewString(name), types.NewString(kind), value}
				if h == nil {
					row = append(row, null, null, null, null, null, null)
				} else {
					row = append(row,
						types.NewInt(h.Count), types.NewInt(h.Sum), types.NewInt(h.Max),
						types.NewInt(h.P50), types.NewInt(h.P95), types.NewInt(h.P99))
				}
				b.AppendRow(row)
			}
			for _, name := range sortedKeys(s.Counters) {
				appendRow(name, "counter", types.NewInt(s.Counters[name]), nil)
			}
			for _, name := range sortedKeys(s.Gauges) {
				appendRow(name, "gauge", types.NewInt(s.Gauges[name]), nil)
			}
			for _, name := range sortedKeys(s.Histograms) {
				h := s.Histograms[name]
				appendRow(name, "histogram", null, &h)
			}
			return b, nil
		},
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ProfileRows flattens a span-profile tree into rows for
// v_monitor.query_profiles: one row per span, with the materialized
// path ("query/scan:lineitem/fragment:n1/fetch") identifying its place
// in the tree.
func ProfileRows(b *types.Batch, origin string, seq int64, p *obs.Profile) {
	var walk func(path string, depth int64, n *obs.Profile)
	walk = func(path string, depth int64, n *obs.Profile) {
		b.AppendRow(types.Row{
			types.NewString(origin),
			types.NewInt(seq),
			types.NewString(path),
			types.NewString(n.Name),
			types.NewInt(depth),
			types.NewInt(int64(n.Wall)),
			types.NewInt(n.RowsIn),
			types.NewInt(n.RowsOut),
			types.NewInt(n.Bytes),
		})
		for _, c := range n.Children {
			walk(path+"/"+c.Name, depth+1, c)
		}
	}
	if p != nil {
		walk(p.Name, 0, p)
	}
}

// ProfileSchema is the v_monitor.query_profiles schema ProfileRows
// appends over.
func ProfileSchema() types.Schema {
	return types.Schema{
		{Name: "origin", Type: types.Varchar},
		{Name: "query_seq", Type: types.Int64},
		{Name: "path", Type: types.Varchar},
		{Name: "operator", Type: types.Varchar},
		{Name: "depth", Type: types.Int64},
		{Name: "wall_ns", Type: types.Int64},
		{Name: "rows_in", Type: types.Int64},
		{Name: "rows_out", Type: types.Int64},
		{Name: "bytes", Type: types.Int64},
	}
}
