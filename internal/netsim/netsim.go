// Package netsim models the cluster interconnect for the in-process
// simulation: per-message latency, per-link bandwidth, rack locality and
// node reachability. Higher layers call Transfer to account for the cost
// of moving bytes between nodes (metadata distribution, peer cache
// warming, query exchanges) and move the actual data in memory.
package netsim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrUnreachable is returned when an endpoint is down or partitioned.
var ErrUnreachable = errors.New("netsim: node unreachable")

// LinkCost describes one direction of a node pair.
type LinkCost struct {
	Latency   time.Duration
	Bandwidth float64 // bytes per second; 0 = infinite
}

// Stats counts network traffic.
type Stats struct {
	Messages int64
	Bytes    int64
}

// Network is the simulated interconnect. The zero cost configuration
// transfers instantly, which unit tests rely on.
type Network struct {
	mu      sync.RWMutex
	def     LinkCost
	links   map[string]LinkCost // "from->to" overrides
	racks   map[string]string   // node -> rack
	crossRk LinkCost            // cost override for cross-rack links
	hasXRk  bool
	down    map[string]bool

	messages atomic.Int64
	bytes    atomic.Int64
}

// New returns a network with the given default link cost.
func New(def LinkCost) *Network {
	return &Network{
		def:   def,
		links: map[string]LinkCost{},
		racks: map[string]string{},
		down:  map[string]bool{},
	}
}

func key(from, to string) string { return from + "->" + to }

// SetLink overrides the cost of one directed link.
func (n *Network) SetLink(from, to string, c LinkCost) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[key(from, to)] = c
}

// SetRack places a node on a rack; links between different racks use the
// cross-rack cost when one is set.
func (n *Network) SetRack(node, rack string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.racks[node] = rack
}

// Rack returns the rack of a node ("" if unplaced).
func (n *Network) Rack(node string) string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.racks[node]
}

// SetCrossRackCost sets the cost of links crossing racks.
func (n *Network) SetCrossRackCost(c LinkCost) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crossRk = c
	n.hasXRk = true
}

// SetDown marks a node unreachable (true) or reachable (false).
func (n *Network) SetDown(node string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[node] = down
}

// IsDown reports whether a node is marked unreachable.
func (n *Network) IsDown(node string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.down[node]
}

// costFor resolves the link cost for a directed pair.
func (n *Network) costFor(from, to string) LinkCost {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if c, ok := n.links[key(from, to)]; ok {
		return c
	}
	if n.hasXRk {
		rf, rt := n.racks[from], n.racks[to]
		if rf != rt && (rf != "" || rt != "") {
			return n.crossRk
		}
	}
	return n.def
}

// Transfer accounts for moving size bytes from one node to another,
// sleeping for the modeled cost. It fails if either endpoint is down.
func (n *Network) Transfer(ctx context.Context, from, to string, size int64) error {
	if n.IsDown(from) || n.IsDown(to) {
		return fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}
	c := n.costFor(from, to)
	d := c.Latency
	if c.Bandwidth > 0 && size > 0 {
		d += time.Duration(float64(size) / c.Bandwidth * float64(time.Second))
	}
	if d > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
		}
	}
	// Re-check after the transfer time: a node killed mid-transfer fails
	// the transfer.
	if n.IsDown(from) || n.IsDown(to) {
		return fmt.Errorf("%w: %s -> %s (during transfer)", ErrUnreachable, from, to)
	}
	n.messages.Add(1)
	n.bytes.Add(size)
	return nil
}

// Stats returns traffic totals.
func (n *Network) Stats() Stats {
	return Stats{Messages: n.messages.Load(), Bytes: n.bytes.Load()}
}

// ResetStats zeroes traffic totals.
func (n *Network) ResetStats() {
	n.messages.Store(0)
	n.bytes.Store(0)
}
