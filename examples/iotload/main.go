// IoT load: many concurrent small COPY statements (paper §8, Figure
// 11b), followed by tuple-mover compaction and file garbage collection.
// Each load's files reach shared storage before its commit; mergeout
// later folds the many small containers into few, and the dropped files
// are deleted only once no query or revive could reference them (§6.5).
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"eon"
	"eon/internal/workload"
)

func main() {
	db, err := eon.Create(eon.Config{
		Mode: eon.ModeEon,
		Nodes: []eon.NodeSpec{
			{Name: "node1"}, {Name: "node2"}, {Name: "node3"},
		},
		ShardCount: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	iot := workload.DefaultIoT()
	iot.RowsPerLoad = 500
	s := db.NewSession()
	for _, stmt := range iot.DDL() {
		if _, err := s.Execute(stmt); err != nil {
			log.Fatal(err)
		}
	}

	// 8 concurrent loaders, 5 loads each — the small-batch ingest
	// pattern of sensor fleets.
	const loaders, loadsEach = 8, 5
	var seq atomic.Int64
	var wg sync.WaitGroup
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < loadsEach; i++ {
				if err := db.LoadRows("readings", iot.Batch(seq.Add(1))); err != nil {
					log.Println("load:", err)
				}
			}
		}()
	}
	wg.Wait()

	res, _ := db.NewSession().Query(`SELECT COUNT(*) FROM readings`)
	fmt.Printf("loaded %s readings in %d COPYs\n", res.Rows()[0][0], loaders*loadsEach)

	res, _ = db.NewSession().Query(`SELECT metric, COUNT(*) AS n, AVG(value) AS mean
		FROM readings GROUP BY metric ORDER BY metric`)
	for _, row := range res.Rows() {
		fmt.Printf("  %-9s n=%-6s mean=%s\n", row[0], row[1], row[2])
	}

	// Compaction: the mergeout coordinator of each shard folds small
	// containers into larger ones (§6.2).
	stats, err := db.RunTupleMover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mergeout: %d jobs merged %d containers\n", stats.Jobs, stats.ContainersMerged)

	// The replaced files become deletion candidates, gated on the
	// truncation version and running queries (§6.5).
	if err := db.SyncMetadata(); err != nil {
		log.Fatal(err)
	}
	n, err := db.RunGC()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gc: deleted %d obsolete files from shared storage\n", n)

	res, _ = db.NewSession().Query(`SELECT COUNT(*) FROM readings`)
	fmt.Printf("readings after compaction + gc: %s\n", res.Rows()[0][0])
}
