package resilience

import (
	"context"
	"errors"
	"time"
)

// Policy is a retry policy for one class of operations: bounded attempts
// with capped exponential backoff, full jitter, and a per-attempt
// deadline budget carved from the caller's context.
type Policy struct {
	// MaxAttempts is the total number of attempts including the first
	// (minimum 1; 0 means the default of 4).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles per
	// retry. 0 means the default of 2ms.
	BaseDelay time.Duration
	// MaxDelay caps the doubling backoff. 0 means the default of 250ms.
	MaxDelay time.Duration
	// OpTimeout bounds each individual attempt with a deadline carved
	// from the caller's context, so one hung request cannot consume the
	// whole query budget. 0 disables the per-attempt bound.
	OpTimeout time.Duration
	// Retryable classifies errors; nil retries nothing. Context
	// cancellation is never retried regardless of the classifier.
	Retryable func(error) bool
	// Jitter overrides the backoff jitter for tests: it receives the
	// capped exponential delay and returns the sleep. nil applies full
	// jitter (uniform in [0, delay)) from rng.
	Jitter func(d time.Duration) time.Duration

	rng *lockedRand
}

// DefaultPolicy returns the policy used for shared-storage access when
// the caller does not tune one.
func DefaultPolicy(retryable func(error) bool) Policy {
	return Policy{
		MaxAttempts: 4,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    250 * time.Millisecond,
		Retryable:   retryable,
	}
}

// withDefaults fills zero fields.
func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 2 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	if p.rng == nil {
		p.rng = newLockedRand(1)
	}
	return p
}

// Seeded returns a copy of the policy with a deterministic jitter source.
func (p Policy) Seeded(seed int64) Policy {
	p.rng = newLockedRand(seed)
	return p
}

// backoff returns the capped exponential delay before retry i (0-based).
func (p Policy) backoff(i int) time.Duration {
	d := p.BaseDelay
	for ; i > 0 && d < p.MaxDelay; i-- {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// Do runs op under the policy, recording attempts in c (which may be
// nil). Each attempt receives a context bounded by OpTimeout; an attempt
// that times out while the parent context is still live counts as
// retryable. There is no sleep after the final attempt, and the backoff
// never exceeds MaxDelay.
func (p Policy) Do(ctx context.Context, c *Counters, op func(ctx context.Context) error) error {
	p = p.withDefaults()
	var err error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.Retry()
		}
		c.Attempt()
		err = p.runOnce(ctx, op)
		if err == nil {
			return nil
		}
		if !p.retryable(ctx, err) {
			return err
		}
		c.Failure()
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if attempt == p.MaxAttempts-1 {
			break // exhausted: return the error, do not sleep first
		}
		delay := p.backoff(attempt)
		if p.Jitter != nil {
			delay = p.Jitter(delay)
		} else {
			delay = p.rng.durationIn(delay)
		}
		if delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
	}
	return err
}

// runOnce executes one attempt under the per-attempt deadline budget.
func (p Policy) runOnce(ctx context.Context, op func(ctx context.Context) error) error {
	if p.OpTimeout <= 0 {
		return op(ctx)
	}
	actx, cancel := context.WithTimeout(ctx, p.OpTimeout)
	defer cancel()
	return op(actx)
}

// retryable classifies an attempt error: the injected classifier, plus
// per-attempt timeouts whose parent context is still live.
func (p Policy) retryable(ctx context.Context, err error) bool {
	if p.Retryable != nil && p.Retryable(err) {
		return true
	}
	if p.OpTimeout > 0 && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
		return true // the attempt budget expired, not the query budget
	}
	return false
}
