package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"eon/internal/objstore"
	"eon/internal/types"
)

// newParallelScanDB builds an Eon cluster tuned to exercise the parallel
// scan path: bundling disabled so every column is its own fetch, small
// WOS threshold so loads land in ROS containers. Shared storage carries
// a small simulated GET latency so cold fetches from concurrent
// sessions reliably overlap in flight (the coalescing window).
func newParallelScanDB(t *testing.T, scanConc int) *DB {
	t.Helper()
	db, err := Create(Config{
		Mode: ModeEon,
		Nodes: []NodeSpec{
			{Name: "node1"}, {Name: "node2"}, {Name: "node3"},
		},
		ShardCount: 4,
		Shared: objstore.NewSim(objstore.NewMem(), objstore.SimConfig{
			GetLatency: 2 * time.Millisecond,
		}),
		ExecSlots:       16,
		WOSMaxRows:      4,
		BundleThreshold: -1,
		Seed:            42,
		ScanConcurrency: scanConc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// loadSalesBatches loads the sales fixture in several batches so each
// shard accumulates multiple storage containers.
func loadSalesBatches(t *testing.T, db *DB, batches, rowsPer int) {
	t.Helper()
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE sales (sale_id INTEGER, customer VARCHAR, price FLOAT, region VARCHAR)`)
	mustExec(t, s, `CREATE PROJECTION sales_p1 AS SELECT * FROM sales ORDER BY sale_id SEGMENTED BY HASH(sale_id) ALL NODES`)
	customers := []string{"ada", "grace", "barbara", "shafi", "frances"}
	regions := []string{"east", "west", "north"}
	id := 0
	for b := 0; b < batches; b++ {
		batch := types.NewBatch(types.Schema{
			{Name: "sale_id", Type: types.Int64},
			{Name: "customer", Type: types.Varchar},
			{Name: "price", Type: types.Float64},
			{Name: "region", Type: types.Varchar},
		}, rowsPer)
		for i := 0; i < rowsPer; i++ {
			id++
			batch.AppendRow(types.Row{
				types.NewInt(int64(id)),
				types.NewString(customers[id%len(customers)]),
				types.NewFloat(float64((id % 50) + 1)),
				types.NewString(regions[id%len(regions)]),
			})
		}
		if err := db.LoadRows("sales", batch); err != nil {
			t.Fatal(err)
		}
	}
}

// scanTestQueries are deterministic (ordered or aggregate-only) so their
// results compare byte-for-byte across runs and concurrency levels.
var scanTestQueries = []string{
	`SELECT COUNT(*) FROM sales`,
	`SELECT sale_id, customer, price FROM sales WHERE price > 25 ORDER BY sale_id`,
	`SELECT region, COUNT(*) AS n, SUM(price) AS total FROM sales GROUP BY region ORDER BY region`,
	`SELECT customer, COUNT(*) AS n FROM sales WHERE region = 'east' GROUP BY customer ORDER BY customer`,
}

func renderRows(res *Result) []string {
	out := make([]string, 0, res.NumRows())
	for _, r := range res.Rows() {
		out = append(out, fmt.Sprint(r))
	}
	return out
}

// TestConcurrentSessionsMatchSerial runs many concurrent sessions over
// overlapping shards against the parallel scan pipeline and asserts that
// every result is identical to the serial (ScanConcurrency=1) pipeline's,
// and that cold concurrent misses coalesced onto shared in-flight fetches.
func TestConcurrentSessionsMatchSerial(t *testing.T) {
	const batches, rowsPer = 6, 40

	// Serial baseline.
	serial := newParallelScanDB(t, 1)
	loadSalesBatches(t, serial, batches, rowsPer)
	want := make([][]string, len(scanTestQueries))
	for i, q := range scanTestQueries {
		want[i] = renderRows(mustQuery(t, serial.NewSession(), q))
	}

	// Parallel pipeline, cold caches, many concurrent sessions.
	db := newParallelScanDB(t, 8)
	loadSalesBatches(t, db, batches, rowsPer)
	for _, n := range db.Nodes() {
		n.cache.Clear(db.Context())
	}

	const sessions = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, sessions*len(scanTestQueries))
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := db.NewSession()
			<-start
			for i, q := range scanTestQueries {
				res, err := s.Query(q)
				if err != nil {
					errs <- fmt.Errorf("session %d query %d: %w", g, i, err)
					return
				}
				got := renderRows(res)
				if len(got) != len(want[i]) {
					errs <- fmt.Errorf("session %d query %d: %d rows, want %d", g, i, len(got), len(want[i]))
					return
				}
				for j := range got {
					if got[j] != want[i][j] {
						errs <- fmt.Errorf("session %d query %d row %d: %s != %s", g, i, j, got[j], want[i][j])
						return
					}
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Cold overlapping scans must have coalesced onto in-flight fetches.
	st := db.ScanStats()
	if st.CoalescedFetches == 0 {
		t.Errorf("CoalescedFetches = 0 after %d cold concurrent sessions; stats=%+v", sessions, st)
	}
	if st.ContainersScanned == 0 || st.Fetches == 0 || st.RowsScanned == 0 {
		t.Errorf("implausible cumulative stats: %+v", st)
	}
}

// TestScanStatsPerQuery checks the per-session snapshot: pruning,
// fetch accounting, cache classification, and the time split.
func TestScanStatsPerQuery(t *testing.T) {
	db := newParallelScanDB(t, 4)
	loadSalesBatches(t, db, 4, 40)

	s := db.NewSession()
	mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
	st := s.LastScanStats()
	if st.ContainersScanned == 0 {
		t.Fatalf("no containers scanned: %+v", st)
	}
	if st.Fetches == 0 || st.BytesFetched == 0 {
		t.Errorf("no fetches recorded: %+v", st)
	}
	if st.Wall <= 0 {
		t.Errorf("Wall = %v, want > 0", st.Wall)
	}
	if st.CacheHits+st.CacheMisses != st.Fetches {
		t.Errorf("hits(%d)+misses(%d) != fetches(%d)", st.CacheHits, st.CacheMisses, st.Fetches)
	}

	// A selective predicate on the sort key must prune blocks or whole
	// containers via min/max stats.
	mustQuery(t, s, `SELECT sale_id FROM sales WHERE sale_id = 1 ORDER BY sale_id`)
	st = s.LastScanStats()
	if st.ContainersPruned+st.BlocksPruned == 0 {
		t.Errorf("point query pruned nothing: %+v", st)
	}

	// Warm-cache repeat: all fetches should now be hits.
	mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
	st = s.LastScanStats()
	if st.CacheMisses != 0 {
		t.Errorf("warm query missed %d times: %+v", st.CacheMisses, st)
	}
	if st.CacheHits == 0 {
		t.Errorf("warm query recorded no hits: %+v", st)
	}

	// The cumulative DB view accumulates across queries.
	total := db.ScanStats()
	if total.Fetches < st.Fetches || total.ContainersScanned < st.ContainersScanned {
		t.Errorf("cumulative stats smaller than last query: total=%+v last=%+v", total, st)
	}
}
