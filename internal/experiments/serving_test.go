package experiments

import (
	"fmt"
	"sync"
	"testing"

	"eon/internal/core"
	"eon/internal/objstore"
	"eon/internal/types"
	"eon/internal/workload"
)

// newServingCluster builds an Eon cluster with the serving-path caches
// either fully on (plan cache + result cache + admission control) or
// fully off — the two sides of the differential tests below.
func newServingCluster(nodes, shards, rep int, cached bool) (*core.DB, error) {
	sim := objstore.NewSim(objstore.NewMem(), SharedStorageSim(1))
	cfg := core.Config{
		Mode:              core.ModeEon,
		Nodes:             nodeSpecs(nodes),
		ShardCount:        shards,
		ReplicationFactor: rep,
		Shared:            sim,
		Net:               ClusterNet(),
		ExecSlots:         8,
	}
	if cached {
		cfg.ResultCacheBytes = 8 << 20
		cfg.SubclusterConcurrency = 8
	} else {
		cfg.PlanCacheSize = -1 // disables plan caching entirely
	}
	return core.Create(cfg)
}

// compareResults requires got to equal want: positionally byte-identical
// with exact set, otherwise as a multiset with floats rounded (the
// seeded per-query shard assignment regroups rows across nodes).
func compareResults(t *testing.T, name string, want, got *core.Result, exact bool) {
	t.Helper()
	if got.NumRows() != want.NumRows() {
		t.Fatalf("%s: %d rows cached vs %d uncached", name, got.NumRows(), want.NumRows())
	}
	wantRows, gotRows := want.Rows(), got.Rows()
	if exact {
		for i := range wantRows {
			for c := range wantRows[i] {
				wd, gd := wantRows[i][c], gotRows[i][c]
				if wd.Null != gd.Null || (!wd.Null && wd.Compare(gd) != 0) {
					t.Fatalf("%s: row %d col %d: cached=%v uncached=%v", name, i, c, gd, wd)
				}
			}
		}
		return
	}
	counts := map[string]int{}
	for _, r := range wantRows {
		counts[renderRow(r)]++
	}
	for _, r := range gotRows {
		key := renderRow(r)
		if counts[key] == 0 {
			t.Fatalf("%s: cached row %s not produced by the uncached cluster", name, key)
		}
		counts[key]--
	}
}

// servingDiffRound runs every TPC-H query on both clusters and checks
// the cached cluster — cold or warm — answers exactly like the uncached
// one. Each query runs twice on the cached side so the second execution
// exercises the plan-cache and result-cache hit paths.
func servingDiffRound(t *testing.T, cachedDB, plainDB *core.DB, exact bool) {
	t.Helper()
	plain := plainDB.NewSession()
	cached := cachedDB.NewSession()
	for _, q := range workload.TPCHQueries() {
		want, err := plain.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s: uncached: %v", q.Name, err)
		}
		for pass := 0; pass < 2; pass++ {
			got, err := cached.Query(q.SQL)
			if err != nil {
				t.Fatalf("%s: cached pass %d: %v", q.Name, pass, err)
			}
			compareResults(t, fmt.Sprintf("%s pass %d", q.Name, pass), want, got, exact)
		}
	}
}

// mutateBoth applies one deterministic data change to both clusters so
// their contents stay identical while every cached dependency (table,
// container, delete-vector versions) moves.
func mutateBoth(t *testing.T, stmt string, dbs ...*core.DB) {
	t.Helper()
	for _, db := range dbs {
		if _, err := db.NewSession().Execute(stmt); err != nil {
			t.Fatalf("mutate %q: %v", stmt, err)
		}
	}
}

// TestServingCachesDifferentialSingleNode pins every shard to one node,
// making both clusters fully deterministic, and requires byte-identical
// results between the cache-enabled and cache-disabled cluster — cold,
// warm, and again after deletes and mergeout invalidate what was cached.
func TestServingCachesDifferentialSingleNode(t *testing.T) {
	cachedDB, err := newServingCluster(1, 3, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	plainDB, err := newServingCluster(1, 3, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range []*core.DB{cachedDB, plainDB} {
		if err := LoadTPCH(db, 0.02); err != nil {
			t.Fatal(err)
		}
	}

	servingDiffRound(t, cachedDB, plainDB, true)

	// Deterministic churn: deletes touch delete-vector versions, mergeout
	// rewrites containers. A stale cached plan or result after either
	// would diverge from the uncached cluster.
	mutateBoth(t, `DELETE FROM lineitem WHERE l_quantity = 1`, cachedDB, plainDB)
	servingDiffRound(t, cachedDB, plainDB, true)

	mutateBoth(t, `DELETE FROM orders WHERE o_orderkey < 50`, cachedDB, plainDB)
	for _, db := range []*core.DB{cachedDB, plainDB} {
		if _, err := db.RunMergeout(); err != nil {
			t.Fatal(err)
		}
	}
	servingDiffRound(t, cachedDB, plainDB, true)

	counters := cachedDB.Metrics().Counters
	if counters["plancache.hits"] == 0 {
		t.Fatal("differential ran without a single plan-cache hit — the cached path was not exercised")
	}
	if counters["resultcache.hits"] == 0 {
		t.Fatal("differential ran without a single result-cache hit — the cached path was not exercised")
	}
}

// TestServingCachesDifferentialClusterChurn runs the same differential
// on a three-node cluster while a background goroutine per cluster
// churns DDL, loads and mergeouts concurrently with the queries. The
// churn tables are disjoint from the TPC-H schema, so answers must not
// change — but every catalog bump invalidates cached plans mid-flight,
// exercising the replan path under the race detector.
func TestServingCachesDifferentialClusterChurn(t *testing.T) {
	cachedDB, err := newServingCluster(3, 3, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	plainDB, err := newServingCluster(3, 3, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range []*core.DB{cachedDB, plainDB} {
		if err := LoadTPCH(db, 0.02); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	churnBatch := types.NewBatch(types.Schema{
		{Name: "k", Type: types.Int64}, {Name: "v", Type: types.Varchar},
	}, 64)
	for i := 0; i < 64; i++ {
		churnBatch.AppendRow(types.Row{types.NewInt(int64(i)), types.NewString("churn")})
	}
	for _, db := range []*core.DB{cachedDB, plainDB} {
		wg.Add(1)
		go func(db *core.DB) {
			defer wg.Done()
			s := db.NewSession()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("churn_%d", i)
				if _, err := s.Execute(fmt.Sprintf(`CREATE TABLE %s (k INTEGER, v VARCHAR)`, name)); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Execute(fmt.Sprintf(
					`CREATE PROJECTION %s_p AS SELECT * FROM %s ORDER BY k SEGMENTED BY HASH(k) ALL NODES`, name, name)); err != nil {
					t.Error(err)
					return
				}
				if err := db.LoadRows(name, churnBatch); err != nil {
					t.Error(err)
					return
				}
				if _, err := db.RunMergeout(); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Execute(fmt.Sprintf(`DROP TABLE %s`, name)); err != nil {
					t.Error(err)
					return
				}
			}
		}(db)
	}

	servingDiffRound(t, cachedDB, plainDB, false)
	mutateBoth(t, `DELETE FROM lineitem WHERE l_quantity = 2`, cachedDB, plainDB)
	servingDiffRound(t, cachedDB, plainDB, false)
	close(stop)
	wg.Wait()

	counters := cachedDB.Metrics().Counters
	if counters["plancache.hits"]+counters["plancache.replans"] == 0 {
		t.Fatal("churn differential never exercised the plan cache")
	}
}
