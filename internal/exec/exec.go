// Package exec implements the vectorized execution engine: pull-based
// operators over column batches — scan sources, filter, project, hash
// join, hash aggregation (with partial/final modes for distributed
// plans), sort, limit, distinct and hash repartitioning for exchanges.
// The same operators execute in both Enterprise and Eon modes; only the
// scan sources and data placement differ (paper §4: "Eon runs Vertica's
// standard cost-based distributed optimizer, generating query plans
// equivalent to Enterprise mode").
package exec

import (
	"encoding/binary"
	"math"

	"eon/internal/expr"
	"eon/internal/types"
)

// Operator is a pull-based batch iterator. Next returns nil when the
// stream is exhausted.
type Operator interface {
	Schema() types.Schema
	Next() (*types.Batch, error)
}

// Engine selects an operator's evaluation strategy. The zero value is
// the vectorized engine (typed kernels over selection vectors); Row
// forces the original row-at-a-time path (EvalBatch/FilterBatch), kept
// for differential testing and benchmarking. Stats, when set, receives
// the vectorized/fallback row counters from expression evaluation.
type Engine struct {
	Row   bool
	Stats *expr.VecStats
}

// selOperator is implemented by operators that can hand their output to
// a downstream consumer as an un-gathered batch plus a selection vector
// (nil = every row), deferring or eliminating the copy. Consumers use
// pullSel, which degrades to Next for plain operators.
type selOperator interface {
	nextSel() (*types.Batch, []int, error)
}

// pullSel pulls the next batch from op in (batch, selection) form.
func pullSel(op Operator) (*types.Batch, []int, error) {
	if so, ok := op.(selOperator); ok {
		return so.nextSel()
	}
	b, err := op.Next()
	return b, nil, err
}

// selRow maps a dense position to a batch row index.
func selRow(sel []int, j int) int {
	if sel == nil {
		return j
	}
	return sel[j]
}

// selLen returns the number of rows a selection covers.
func selLen(b *types.Batch, sel []int) int {
	if sel == nil {
		return b.NumRows()
	}
	return len(sel)
}

// Source replays a fixed list of batches (used for materialized inputs,
// WOS contents, and network-received fragments).
type Source struct {
	schema  types.Schema
	batches []*types.Batch
	pos     int
}

// NewSource wraps batches as an Operator.
func NewSource(schema types.Schema, batches ...*types.Batch) *Source {
	return &Source{schema: schema, batches: batches}
}

// Schema implements Operator.
func (s *Source) Schema() types.Schema { return s.schema }

// Next implements Operator.
func (s *Source) Next() (*types.Batch, error) {
	for s.pos < len(s.batches) {
		b := s.batches[s.pos]
		s.pos++
		if b != nil && b.NumRows() > 0 {
			return b, nil
		}
	}
	return nil, nil
}

// UnionAll concatenates the streams of several same-schema operators.
type UnionAll struct {
	inputs []Operator
	pos    int
}

// NewUnionAll unions inputs; at least one input is required.
func NewUnionAll(inputs ...Operator) *UnionAll {
	return &UnionAll{inputs: inputs}
}

// Schema implements Operator.
func (u *UnionAll) Schema() types.Schema { return u.inputs[0].Schema() }

// Next implements Operator.
func (u *UnionAll) Next() (*types.Batch, error) {
	for u.pos < len(u.inputs) {
		b, err := u.inputs[u.pos].Next()
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
		u.pos++
	}
	return nil, nil
}

// Limit passes through at most N rows.
type Limit struct {
	input Operator
	n     int64
	seen  int64
}

// NewLimit wraps input with a row cap.
func NewLimit(input Operator, n int64) *Limit {
	return &Limit{input: input, n: n}
}

// Schema implements Operator.
func (l *Limit) Schema() types.Schema { return l.input.Schema() }

// Next implements Operator.
func (l *Limit) Next() (*types.Batch, error) {
	if l.seen >= l.n {
		return nil, nil
	}
	b, err := l.input.Next()
	if err != nil || b == nil {
		return nil, err
	}
	remain := l.n - l.seen
	if int64(b.NumRows()) > remain {
		b = b.Slice(0, int(remain))
	}
	l.seen += int64(b.NumRows())
	return b, nil
}

// Collect drains an operator into a single batch.
func Collect(op Operator) (*types.Batch, error) {
	out := types.NewBatch(op.Schema(), 0)
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		out.AppendBatch(b)
	}
}

// rowKey builds a hashable, collision-free composite key from the given
// columns of row i: each field is type-tagged and length-prefixed.
func rowKey(buf []byte, b *types.Batch, i int, cols []int) []byte {
	buf = buf[:0]
	for _, c := range cols {
		v := b.Cols[c]
		if v.IsNull(i) {
			buf = append(buf, 0)
			continue
		}
		switch v.Typ.Physical() {
		case types.Int64:
			buf = append(buf, 1)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Ints[i]))
		case types.Float64:
			buf = append(buf, 2)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Floats[i]))
		case types.Varchar:
			buf = append(buf, 3)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Strs[i])))
			buf = append(buf, v.Strs[i]...)
		case types.Bool:
			if v.Bools[i] {
				buf = append(buf, 5)
			} else {
				buf = append(buf, 4)
			}
		}
	}
	return buf
}

// Distinct removes duplicate rows (over all columns).
type Distinct struct {
	input Operator
	seen  map[string]struct{}
	done  bool
	Eng   Engine

	seenInt  map[int64]struct{} // typed path: single Int64-physical column
	seenNull bool
}

// NewDistinct wraps input with duplicate elimination.
func NewDistinct(input Operator) *Distinct {
	return &Distinct{input: input, seen: map[string]struct{}{}}
}

// Schema implements Operator.
func (d *Distinct) Schema() types.Schema { return d.input.Schema() }

// Next implements Operator.
func (d *Distinct) Next() (*types.Batch, error) {
	if d.done {
		return nil, nil
	}
	if d.Eng.Row {
		return d.nextRow()
	}
	schema := d.input.Schema()
	intKey := len(schema) == 1 && schema[0].Type.Physical() == types.Int64
	if intKey && d.seenInt == nil {
		d.seenInt = map[int64]struct{}{}
	}
	allCols := make([]int, len(schema))
	for i := range allCols {
		allCols[i] = i
	}
	var key []byte
	for {
		b, sel, err := pullSel(d.input)
		if err != nil {
			return nil, err
		}
		if b == nil {
			d.done = true
			return nil, nil
		}
		m := selLen(b, sel)
		var keep []int
		if intKey {
			col := b.Cols[0]
			for j := 0; j < m; j++ {
				i := selRow(sel, j)
				if col.IsNull(i) {
					if !d.seenNull {
						d.seenNull = true
						keep = append(keep, i)
					}
					continue
				}
				v := col.Ints[i]
				if _, ok := d.seenInt[v]; !ok {
					d.seenInt[v] = struct{}{}
					keep = append(keep, i)
				}
			}
		} else {
			for j := 0; j < m; j++ {
				i := selRow(sel, j)
				key = rowKey(key, b, i, allCols)
				if _, ok := d.seen[string(key)]; !ok {
					d.seen[string(key)] = struct{}{}
					keep = append(keep, i)
				}
			}
		}
		if len(keep) > 0 {
			return b.Gather(keep), nil
		}
	}
}

// nextRow is the original row-engine path.
func (d *Distinct) nextRow() (*types.Batch, error) {
	allCols := make([]int, len(d.input.Schema()))
	for i := range allCols {
		allCols[i] = i
	}
	var key []byte
	for {
		b, err := d.input.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			d.done = true
			return nil, nil
		}
		var keep []int
		for i := 0; i < b.NumRows(); i++ {
			key = rowKey(key, b, i, allCols)
			if _, ok := d.seen[string(key)]; !ok {
				d.seen[string(key)] = struct{}{}
				keep = append(keep, i)
			}
		}
		if len(keep) > 0 {
			return b.Gather(keep), nil
		}
	}
}
