package exec

import (
	"testing"

	"eon/internal/expr"
	"eon/internal/types"
)

var salesSchema = types.Schema{
	{Name: "id", Type: types.Int64},
	{Name: "region", Type: types.Varchar},
	{Name: "amount", Type: types.Float64},
}

func salesBatch() *types.Batch {
	return types.BatchFromRows(salesSchema, []types.Row{
		{types.NewInt(1), types.NewString("east"), types.NewFloat(10)},
		{types.NewInt(2), types.NewString("west"), types.NewFloat(20)},
		{types.NewInt(3), types.NewString("east"), types.NewFloat(30)},
		{types.NewInt(4), types.NewString("west"), types.NewFloat(40)},
		{types.NewInt(5), types.NewString("east"), types.NewFloat(50)},
	})
}

func bind(t *testing.T, e expr.Expr, s types.Schema) expr.Expr {
	t.Helper()
	if err := expr.Bind(e, s); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSourceAndCollect(t *testing.T) {
	src := NewSource(salesSchema, salesBatch(), nil, salesBatch())
	got, err := Collect(src)
	if err != nil || got.NumRows() != 10 {
		t.Fatalf("collect = %d rows, %v", got.NumRows(), err)
	}
}

func TestFilter(t *testing.T) {
	pred := bind(t, expr.Bin(expr.OpGt, expr.Col("amount"), expr.FloatLit(25)), salesSchema)
	f := NewFilter(NewSource(salesSchema, salesBatch()), pred)
	got, err := Collect(f)
	if err != nil || got.NumRows() != 3 {
		t.Fatalf("filter = %d rows, %v", got.NumRows(), err)
	}
}

func TestProject(t *testing.T) {
	double := bind(t, expr.Bin(expr.OpMul, expr.Col("amount"), expr.FloatLit(2)), salesSchema)
	idRef := bind(t, expr.Col("id"), salesSchema)
	p := NewProject(NewSource(salesSchema, salesBatch()), []expr.Expr{idRef, double}, []string{"id", "doubled"})
	got, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCols() != 2 || got.Cols[1].Floats[0] != 20 {
		t.Errorf("project = %+v", got.Rows())
	}
	if p.Schema()[1].Name != "doubled" {
		t.Error("output schema name")
	}
}

func TestUnionAll(t *testing.T) {
	u := NewUnionAll(
		NewSource(salesSchema, salesBatch()),
		NewSource(salesSchema, salesBatch()),
	)
	got, _ := Collect(u)
	if got.NumRows() != 10 {
		t.Errorf("union = %d", got.NumRows())
	}
}

func TestLimit(t *testing.T) {
	l := NewLimit(NewSource(salesSchema, salesBatch()), 2)
	got, _ := Collect(l)
	if got.NumRows() != 2 {
		t.Errorf("limit = %d", got.NumRows())
	}
	// Limit larger than input.
	l = NewLimit(NewSource(salesSchema, salesBatch()), 100)
	got, _ = Collect(l)
	if got.NumRows() != 5 {
		t.Errorf("limit 100 = %d", got.NumRows())
	}
}

func TestDistinct(t *testing.T) {
	s := types.Schema{{Name: "r", Type: types.Varchar}}
	b := types.BatchFromRows(s, []types.Row{
		{types.NewString("a")}, {types.NewString("b")}, {types.NewString("a")},
		{types.NullDatum(types.Varchar)}, {types.NullDatum(types.Varchar)},
	})
	got, _ := Collect(NewDistinct(NewSource(s, b)))
	if got.NumRows() != 3 { // a, b, NULL
		t.Errorf("distinct = %d rows: %v", got.NumRows(), got.Rows())
	}
}

func TestHashJoin(t *testing.T) {
	custSchema := types.Schema{
		{Name: "cust_id", Type: types.Int64},
		{Name: "name", Type: types.Varchar},
	}
	cust := types.BatchFromRows(custSchema, []types.Row{
		{types.NewInt(1), types.NewString("ada")},
		{types.NewInt(2), types.NewString("grace")},
	})
	orderSchema := types.Schema{
		{Name: "order_id", Type: types.Int64},
		{Name: "cust", Type: types.Int64},
	}
	orders := types.BatchFromRows(orderSchema, []types.Row{
		{types.NewInt(100), types.NewInt(1)},
		{types.NewInt(101), types.NewInt(2)},
		{types.NewInt(102), types.NewInt(1)},
		{types.NewInt(103), types.NewInt(9)}, // no match
		{types.NewInt(104), types.NullDatum(types.Int64)},
	})
	j := NewHashJoin(NewSource(custSchema, cust), NewSource(orderSchema, orders), []int{0}, []int{1})
	got, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Fatalf("join = %d rows: %v", got.NumRows(), got.Rows())
	}
	if got.NumCols() != 4 {
		t.Errorf("join schema = %v", j.Schema())
	}
	// Every output row's keys match.
	for _, r := range got.Rows() {
		if r[0].I != r[3].I {
			t.Errorf("mismatched join row: %v", r)
		}
	}
}

func TestHashJoinDuplicateBuildKeys(t *testing.T) {
	s := types.Schema{{Name: "k", Type: types.Int64}}
	left := types.BatchFromRows(s, []types.Row{{types.NewInt(1)}, {types.NewInt(1)}})
	right := types.BatchFromRows(s, []types.Row{{types.NewInt(1)}, {types.NewInt(1)}, {types.NewInt(2)}})
	j := NewHashJoin(NewSource(s, left), NewSource(s, right), []int{0}, []int{0})
	got, _ := Collect(j)
	if got.NumRows() != 4 { // 2x2 cross of matching keys
		t.Errorf("dup join = %d rows", got.NumRows())
	}
}

func TestHashAggregateGrouped(t *testing.T) {
	region := bind(t, expr.Col("region"), salesSchema)
	amount := bind(t, expr.Col("amount"), salesSchema)
	agg := NewHashAggregate(
		NewSource(salesSchema, salesBatch()),
		[]expr.Expr{region}, []string{"region"},
		[]AggDef{
			{Kind: AggCountStar, Name: "n"},
			{Kind: AggSum, Arg: amount, Name: "total"},
			{Kind: AggAvg, Arg: amount, Name: "mean"},
			{Kind: AggMin, Arg: amount, Name: "lo"},
			{Kind: AggMax, Arg: amount, Name: "hi"},
		}, false)
	got, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 {
		t.Fatalf("groups = %d", got.NumRows())
	}
	byRegion := map[string]types.Row{}
	for _, r := range got.Rows() {
		byRegion[r[0].S] = r
	}
	east := byRegion["east"]
	if east[1].I != 3 || east[2].F != 90 || east[3].F != 30 || east[4].F != 10 || east[5].F != 50 {
		t.Errorf("east = %v", east)
	}
	west := byRegion["west"]
	if west[1].I != 2 || west[2].F != 60 {
		t.Errorf("west = %v", west)
	}
}

func TestHashAggregateGlobalEmptyInput(t *testing.T) {
	empty := NewSource(salesSchema)
	amount := bind(t, expr.Col("amount"), salesSchema)
	agg := NewHashAggregate(empty, nil, nil, []AggDef{
		{Kind: AggCountStar, Name: "n"},
		{Kind: AggSum, Arg: amount, Name: "s"},
	}, false)
	got, err := Collect(agg)
	if err != nil || got.NumRows() != 1 {
		t.Fatalf("global agg rows = %d, %v", got.NumRows(), err)
	}
	if got.Cols[0].Ints[0] != 0 {
		t.Error("count of empty input should be 0")
	}
	if !got.Cols[1].IsNull(0) {
		t.Error("sum of empty input should be NULL")
	}
}

func TestHashAggregateCountIgnoresNulls(t *testing.T) {
	s := types.Schema{{Name: "v", Type: types.Int64}}
	b := types.BatchFromRows(s, []types.Row{
		{types.NewInt(1)}, {types.NullDatum(types.Int64)}, {types.NewInt(3)},
	})
	v := bind(t, expr.Col("v"), s)
	agg := NewHashAggregate(NewSource(s, b), nil, nil, []AggDef{
		{Kind: AggCount, Arg: v, Name: "c"},
		{Kind: AggCountStar, Name: "cs"},
		{Kind: AggSum, Arg: v, Name: "s"},
	}, false)
	got, _ := Collect(agg)
	r := got.Row(0)
	if r[0].I != 2 || r[1].I != 3 || r[2].I != 4 {
		t.Errorf("counts = %v", r)
	}
}

// Partial + merge must equal single-site aggregation.
func TestPartialFinalAggregationEquivalence(t *testing.T) {
	all := salesBatch()
	region := bind(t, expr.Col("region"), salesSchema)
	amount := bind(t, expr.Col("amount"), salesSchema)

	// Split rows between two "nodes".
	node1 := all.Slice(0, 2)
	node2 := all.Slice(2, 5)

	partials := types.NewBatch(types.Schema{}, 0)
	var partialSchema types.Schema
	for _, part := range []*types.Batch{node1, node2} {
		agg := NewHashAggregate(NewSource(salesSchema, part),
			[]expr.Expr{region}, []string{"region"},
			[]AggDef{
				{Kind: AggCountStar, Name: "n"},
				{Kind: AggSum, Arg: amount, Name: "total"},
				{Kind: AggAvg, Arg: amount, Name: "mean"},
			}, true)
		b, err := Collect(agg)
		if err != nil {
			t.Fatal(err)
		}
		if partialSchema == nil {
			partialSchema = agg.Schema()
			partials = types.NewBatch(partialSchema, 0)
		}
		partials.AppendBatch(b)
	}
	// Partial schema: region, n, total, mean, mean_cnt.
	if len(partialSchema) != 5 {
		t.Fatalf("partial schema = %v", partialSchema)
	}

	rg := bind(t, expr.Col("region"), partialSchema)
	n := bind(t, expr.Col("n"), partialSchema)
	total := bind(t, expr.Col("total"), partialSchema)
	mean := bind(t, expr.Col("mean"), partialSchema)
	meanCnt := bind(t, expr.Col("mean_cnt"), partialSchema)
	final := NewHashAggregate(NewSource(partialSchema, partials),
		[]expr.Expr{rg}, []string{"region"},
		[]AggDef{
			{Kind: AggCountMerge, Arg: n, Name: "n"},
			{Kind: AggSum, Arg: total, Name: "total"},
			{Kind: AggAvgMerge, Arg: mean, ArgCount: meanCnt, Name: "mean"},
		}, false)
	got, err := Collect(final)
	if err != nil {
		t.Fatal(err)
	}
	byRegion := map[string]types.Row{}
	for _, r := range got.Rows() {
		byRegion[r[0].S] = r
	}
	east := byRegion["east"]
	if east[1].I != 3 || east[2].F != 90 || east[3].F != 30 {
		t.Errorf("merged east = %v", east)
	}
	west := byRegion["west"]
	if west[1].I != 2 || west[2].F != 60 || west[3].F != 30 {
		t.Errorf("merged west = %v", west)
	}
}

func TestSort(t *testing.T) {
	s := NewSort(NewSource(salesSchema, salesBatch()), []SortSpec{{Col: 2, Desc: true}})
	got, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cols[2].Floats[0] != 50 || got.Cols[2].Floats[4] != 10 {
		t.Errorf("sorted = %v", got.Cols[2].Floats)
	}
}

func TestSortMultiKey(t *testing.T) {
	srt := NewSort(NewSource(salesSchema, salesBatch()), []SortSpec{
		{Col: 1, Desc: false}, {Col: 2, Desc: true},
	})
	got, _ := Collect(srt)
	// east rows first (amount desc 50,30,10) then west (40,20).
	want := []float64{50, 30, 10, 40, 20}
	for i, w := range want {
		if got.Cols[2].Floats[i] != w {
			t.Fatalf("multi-key sort = %v", got.Cols[2].Floats)
		}
	}
}

func TestTopK(t *testing.T) {
	tk := NewTopK(NewSource(salesSchema, salesBatch()), []SortSpec{{Col: 2, Desc: true}}, 2)
	got, err := Collect(tk)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 || got.Cols[2].Floats[0] != 50 || got.Cols[2].Floats[1] != 40 {
		t.Errorf("topk = %v", got.Cols[2].Floats)
	}
}

func TestTopKMatchesSortLimit(t *testing.T) {
	keys := []SortSpec{{Col: 0, Desc: false}}
	a, _ := Collect(NewTopK(NewSource(salesSchema, salesBatch()), keys, 3))
	b, _ := Collect(NewLimit(NewSort(NewSource(salesSchema, salesBatch()), keys), 3))
	if a.NumRows() != b.NumRows() {
		t.Fatalf("topk %d != sort+limit %d", a.NumRows(), b.NumRows())
	}
	for i := 0; i < a.NumRows(); i++ {
		if a.Cols[0].Ints[i] != b.Cols[0].Ints[i] {
			t.Errorf("row %d: %d != %d", i, a.Cols[0].Ints[i], b.Cols[0].Ints[i])
		}
	}
}

func TestPartitionByHash(t *testing.T) {
	b := salesBatch()
	parts := PartitionByHash(b, []int{0}, 3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for _, p := range parts {
		if p != nil {
			total += p.NumRows()
		}
	}
	if total != 5 {
		t.Errorf("partition lost rows: %d", total)
	}
	// Determinism: same row always lands in the same part.
	parts2 := PartitionByHash(salesBatch(), []int{0}, 3)
	for i := range parts {
		n1, n2 := 0, 0
		if parts[i] != nil {
			n1 = parts[i].NumRows()
		}
		if parts2[i] != nil {
			n2 = parts2[i].NumRows()
		}
		if n1 != n2 {
			t.Error("partitioning not deterministic")
		}
	}
}

func TestHashFilterPartitionsCompletely(t *testing.T) {
	// Union of all hash-filter parts = original rows, no overlap (§4.4).
	n := 3
	seen := map[int64]int{}
	for part := 0; part < n; part++ {
		hf := NewHashFilter(NewSource(salesSchema, salesBatch()), []int{0}, part, n)
		got, err := Collect(hf)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range got.Cols[0].Ints {
			seen[id]++
		}
	}
	if len(seen) != 5 {
		t.Errorf("coverage = %v", seen)
	}
	for id, c := range seen {
		if c != 1 {
			t.Errorf("row %d seen %d times", id, c)
		}
	}
}

func TestLimitZero(t *testing.T) {
	got, _ := Collect(NewLimit(NewSource(salesSchema, salesBatch()), 0))
	if got.NumRows() != 0 {
		t.Error("limit 0")
	}
}
