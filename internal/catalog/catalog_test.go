package catalog

import (
	"context"
	"errors"
	"testing"

	"eon/internal/types"
	"eon/internal/udfs"
)

func newTable(c *Catalog, name string) *Table {
	return &Table{
		OID:  c.NewOID(),
		Name: name,
		Columns: types.Schema{
			{Name: "id", Type: types.Int64},
			{Name: "val", Type: types.Varchar},
		},
	}
}

func TestCommitBasic(t *testing.T) {
	c := New()
	txn := c.Begin()
	tbl := newTable(c, "sales")
	txn.Put(tbl)
	rec, err := c.Commit(txn)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Version != 1 || len(rec.Ops) != 1 {
		t.Fatalf("record = %+v", rec)
	}
	snap := c.Snapshot()
	if snap.Version() != 1 {
		t.Errorf("version = %d", snap.Version())
	}
	got, ok := snap.TableByName("SALES")
	if !ok || got.OID != tbl.OID {
		t.Error("table lookup failed")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	c := New()
	txn := c.Begin()
	txn.Put(newTable(c, "t1"))
	before := c.Snapshot()
	if _, err := c.Commit(txn); err != nil {
		t.Fatal(err)
	}
	if before.Len() != 0 {
		t.Error("old snapshot must not see new commit")
	}
	if c.Snapshot().Len() != 1 {
		t.Error("new snapshot must see commit")
	}
}

func TestOCCWriteWriteConflict(t *testing.T) {
	c := New()
	setup := c.Begin()
	tbl := newTable(c, "t")
	setup.Put(tbl)
	if _, err := c.Commit(setup); err != nil {
		t.Fatal(err)
	}

	// Two transactions both modify the same table.
	t1 := c.Begin()
	t2 := c.Begin()
	o1, _ := t1.Get(tbl.OID)
	m1 := o1.Clone().(*Table)
	m1.Name = "renamed1"
	t1.Put(m1)
	o2, _ := t2.Get(tbl.OID)
	m2 := o2.Clone().(*Table)
	m2.Name = "renamed2"
	t2.Put(m2)

	if _, err := c.Commit(t1); err != nil {
		t.Fatal(err)
	}
	_, err := c.Commit(t2)
	if !errors.Is(err, ErrConflict) {
		t.Errorf("want ErrConflict, got %v", err)
	}
	got, _ := c.Snapshot().Get(tbl.OID)
	if got.(*Table).Name != "renamed1" {
		t.Error("first writer should win")
	}
}

func TestOCCReadValidation(t *testing.T) {
	c := New()
	setup := c.Begin()
	tbl := newTable(c, "t")
	setup.Put(tbl)
	c.Commit(setup)

	reader := c.Begin()
	reader.Get(tbl.OID) // records read version
	other := newTable(c, "unrelated")
	reader.Put(other)

	// Concurrent commit modifies what reader read.
	w := c.Begin()
	o, _ := w.Get(tbl.OID)
	m := o.Clone().(*Table)
	m.Name = "x"
	w.Put(m)
	c.Commit(w)

	if _, err := c.Commit(reader); !errors.Is(err, ErrConflict) {
		t.Errorf("read-set validation should fail, got %v", err)
	}
}

func TestNonConflictingCommitsBothSucceed(t *testing.T) {
	c := New()
	t1 := c.Begin()
	t1.Put(newTable(c, "a"))
	t2 := c.Begin()
	t2.Put(newTable(c, "b"))
	if _, err := c.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(t2); err != nil {
		t.Fatalf("disjoint writes must not conflict: %v", err)
	}
	if c.Version() != 2 || c.Snapshot().Len() != 2 {
		t.Error("both commits should be visible")
	}
}

func TestDelete(t *testing.T) {
	c := New()
	txn := c.Begin()
	tbl := newTable(c, "t")
	txn.Put(tbl)
	c.Commit(txn)

	del := c.Begin()
	del.Delete(tbl.OID)
	rec, err := c.Commit(del)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Ops) != 1 || !rec.Ops[0].Delete {
		t.Errorf("delete op = %+v", rec.Ops)
	}
	if _, ok := c.Snapshot().Get(tbl.OID); ok {
		t.Error("object should be gone")
	}
}

func TestCommitValidatedAbort(t *testing.T) {
	c := New()
	txn := c.Begin()
	txn.Put(newTable(c, "t"))
	_, err := c.CommitValidated(txn, func(latest *Snapshot) error {
		return errors.New("subscription changed")
	})
	if err == nil {
		t.Fatal("validation error should abort commit")
	}
	if c.Version() != 0 {
		t.Error("aborted commit must not advance version")
	}
}

func TestApplyRecord(t *testing.T) {
	src := New()
	dst := New()
	txn := src.Begin()
	tbl := newTable(src, "t")
	txn.Put(tbl)
	rec, _ := src.Commit(txn)

	if err := dst.Apply(rec, nil); err != nil {
		t.Fatal(err)
	}
	if dst.Version() != 1 {
		t.Errorf("dst version = %d", dst.Version())
	}
	if _, ok := dst.Snapshot().Get(tbl.OID); !ok {
		t.Error("applied object missing")
	}
	// Applying the same record again must fail (stale).
	if err := dst.Apply(rec, nil); !errors.Is(err, ErrStale) {
		t.Errorf("want ErrStale, got %v", err)
	}
}

func TestApplyShardFiltering(t *testing.T) {
	src := New()
	dst := New()
	txn := src.Begin()
	sc1 := &StorageContainer{OID: src.NewOID(), ShardIndex: 0, RowCount: 10}
	sc2 := &StorageContainer{OID: src.NewOID(), ShardIndex: 1, RowCount: 20}
	txn.Put(sc1)
	txn.Put(sc2)
	rec, _ := src.Commit(txn)

	if err := dst.Apply(rec, KeepShards(map[int]bool{0: true})); err != nil {
		t.Fatal(err)
	}
	if _, ok := dst.Snapshot().Get(sc1.OID); !ok {
		t.Error("subscribed shard object missing")
	}
	if _, ok := dst.Snapshot().Get(sc2.OID); ok {
		t.Error("unsubscribed shard object should be filtered")
	}
	if dst.Version() != rec.Version {
		t.Error("version must advance even when filtering")
	}
}

func TestRecordShardList(t *testing.T) {
	c := New()
	txn := c.Begin()
	txn.Put(newTable(c, "t"))
	txn.Put(&StorageContainer{OID: c.NewOID(), ShardIndex: 2})
	rec, _ := c.Commit(txn)
	want := map[int]bool{GlobalShard: true, 2: true}
	if len(rec.Shards) != 2 {
		t.Fatalf("shards = %v", rec.Shards)
	}
	for _, s := range rec.Shards {
		if !want[s] {
			t.Errorf("unexpected shard %d", s)
		}
	}
}

func TestFilterShards(t *testing.T) {
	c := New()
	txn := c.Begin()
	tbl := newTable(c, "t")
	txn.Put(tbl)
	txn.Put(&StorageContainer{OID: c.NewOID(), ShardIndex: 0})
	txn.Put(&StorageContainer{OID: c.NewOID(), ShardIndex: 1})
	c.Commit(txn)

	f := c.Snapshot().FilterShards(map[int]bool{1: true})
	if f.Len() != 2 { // table (global) + shard-1 container
		t.Errorf("filtered len = %d", f.Len())
	}
	if _, ok := f.TableByName("t"); !ok {
		t.Error("global object must survive filtering")
	}
}

func TestSnapshotQueries(t *testing.T) {
	c := New()
	txn := c.Begin()
	tbl := newTable(c, "t")
	txn.Put(tbl)
	proj := &Projection{OID: c.NewOID(), TableOID: tbl.OID, Name: "t_p1", Columns: []string{"id", "val"}, SortKey: []string{"id"}, SegmentCols: []string{"id"}}
	buddy := &Projection{OID: c.NewOID(), TableOID: tbl.OID, Name: "t_p1_b1", Columns: []string{"id", "val"}, SortKey: []string{"id"}, SegmentCols: []string{"id"}, BuddyOffset: 1, BaseOID: proj.OID}
	txn.Put(buddy)
	txn.Put(proj)
	txn.Put(&Shard{OID: c.NewOID(), Index: 0, Lo: 0, Hi: 1 << 31})
	txn.Put(&Shard{OID: c.NewOID(), Index: 1, Lo: 1 << 31, Hi: 1 << 32})
	txn.Put(&Node{OID: c.NewOID(), Name: "node1"})
	txn.Put(&Subscription{OID: c.NewOID(), Node: "node1", ShardIndex: 0, State: SubActive})
	txn.Put(&Subscription{OID: c.NewOID(), Node: "node1", ShardIndex: 1, State: SubPending})
	sc := &StorageContainer{OID: c.NewOID(), ProjOID: proj.OID, ShardIndex: 0}
	txn.Put(sc)
	txn.Put(&DeleteVector{OID: c.NewOID(), ContainerOID: sc.OID, ShardIndex: 0, Count: 3})
	c.Commit(txn)

	snap := c.Snapshot()
	projs := snap.ProjectionsOf(tbl.OID)
	if len(projs) != 2 || projs[0].BuddyOffset != 0 {
		t.Errorf("projections = %v", projs)
	}
	if len(snap.Shards()) != 2 || snap.SegmentShardCount() != 2 {
		t.Error("shard queries")
	}
	if len(snap.Subscriptions("node1")) != 2 {
		t.Error("subscriptions by node")
	}
	if len(snap.SubscribersOf(0, SubActive)) != 1 || len(snap.SubscribersOf(1, SubActive)) != 0 {
		t.Error("subscribers filtered by state")
	}
	if len(snap.ContainersOf(proj.OID, 0)) != 1 || len(snap.ContainersOf(proj.OID, 5)) != 0 {
		t.Error("containers lookup")
	}
	if len(snap.DeleteVectorsOf(sc.OID)) != 1 {
		t.Error("delete vectors lookup")
	}
	if _, ok := snap.NodeByName("node1"); !ok {
		t.Error("node lookup")
	}
	if _, ok := snap.ProjectionByName("t_p1"); !ok {
		t.Error("projection by name")
	}
}

func TestPersistAndLoad(t *testing.T) {
	ctx := context.Background()
	fs := udfs.NewMemFS()
	c := New()
	c.SetPersister(NewPersister(fs, "catalog", 1<<20))

	var tblOID OID
	for i := 0; i < 5; i++ {
		txn := c.Begin()
		tbl := newTable(c, "t")
		tbl.Name = tbl.Name + string(rune('a'+i))
		txn.Put(tbl)
		if i == 0 {
			tblOID = tbl.OID
		}
		if _, err := c.Commit(txn); err != nil {
			t.Fatal(err)
		}
	}

	snap, next, err := Load(ctx, fs, "catalog")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version() != 5 || snap.Len() != 5 {
		t.Fatalf("loaded v%d len=%d", snap.Version(), snap.Len())
	}
	if next <= tblOID {
		t.Errorf("nextOID %d should exceed allocated %d", next, tblOID)
	}
}

func TestLoadFromCheckpointPlusLogs(t *testing.T) {
	ctx := context.Background()
	fs := udfs.NewMemFS()
	c := New()
	p := NewPersister(fs, "cat", 1) // checkpoint after every commit
	c.SetPersister(p)

	for i := 0; i < 4; i++ {
		txn := c.Begin()
		txn.Put(newTable(c, "t"+string(rune('0'+i))))
		c.Commit(txn)
	}
	// Checkpoint retention: at most two checkpoints on disk.
	infos, _ := fs.List(ctx, "cat/")
	ckpts := 0
	for _, in := range infos {
		if kind, _, ok := ParseCatalogFile(in.Path); ok && kind == "ckpt" {
			ckpts++
		}
	}
	if ckpts > 2 {
		t.Errorf("retained %d checkpoints, want <= 2", ckpts)
	}
	snap, _, err := Load(ctx, fs, "cat")
	if err != nil || snap.Version() != 4 {
		t.Fatalf("load v%d err=%v", snap.Version(), err)
	}
}

func TestLoadEmptyDir(t *testing.T) {
	snap, next, err := Load(context.Background(), udfs.NewMemFS(), "nothing")
	if err != nil || snap.Version() != 0 || next != 1 {
		t.Errorf("empty load: v%d next=%d err=%v", snap.Version(), next, err)
	}
}

func TestRecordsAfter(t *testing.T) {
	ctx := context.Background()
	fs := udfs.NewMemFS()
	c := New()
	c.SetPersister(NewPersister(fs, "cat", 1<<20))
	for i := 0; i < 3; i++ {
		txn := c.Begin()
		txn.Put(newTable(c, "t"))
		c.Commit(txn)
	}
	recs, err := RecordsAfter(ctx, fs, "cat", 1)
	if err != nil || len(recs) != 2 {
		t.Fatalf("records = %d, %v", len(recs), err)
	}
	if recs[0].Version != 2 || recs[1].Version != 3 {
		t.Errorf("versions = %d, %d", recs[0].Version, recs[1].Version)
	}
}

func TestTruncateTo(t *testing.T) {
	ctx := context.Background()
	fs := udfs.NewMemFS()
	c := New()
	c.SetPersister(NewPersister(fs, "cat", 1<<20))
	var oids []OID
	for i := 0; i < 5; i++ {
		txn := c.Begin()
		tbl := newTable(c, "t"+string(rune('0'+i)))
		txn.Put(tbl)
		oids = append(oids, tbl.OID)
		c.Commit(txn)
	}
	snap, next, err := TruncateTo(ctx, fs, "cat", 3)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version() != 3 || snap.Len() != 3 {
		t.Fatalf("truncated to v%d len=%d", snap.Version(), snap.Len())
	}
	if _, ok := snap.Get(oids[4]); ok {
		t.Error("object from discarded commit should be gone")
	}
	if next <= oids[2] {
		t.Error("nextOID too low after truncation")
	}
	// Reload must see the truncated state, not the discarded commits.
	re, _, err := Load(ctx, fs, "cat")
	if err != nil || re.Version() != 3 {
		t.Fatalf("reload after truncate: v%d err=%v", re.Version(), err)
	}
}

func TestApplyAdvancesNextOID(t *testing.T) {
	src := New()
	dst := New()
	txn := src.Begin()
	for i := 0; i < 10; i++ {
		txn.Put(newTable(src, "t"))
	}
	rec, _ := src.Commit(txn)
	dst.Apply(rec, nil)
	if dst.NewOID() <= 10 {
		t.Error("applied NextOID should advance allocator")
	}
}

func TestCheckpointRoundtripAllKinds(t *testing.T) {
	c := New()
	txn := c.Begin()
	tbl := newTable(c, "t")
	txn.Put(tbl)
	txn.Put(&Projection{OID: c.NewOID(), TableOID: tbl.OID, Name: "p"})
	txn.Put(&Shard{OID: c.NewOID(), Index: 0})
	txn.Put(&Subscription{OID: c.NewOID(), Node: "n", ShardIndex: 0, State: SubActive})
	txn.Put(&Node{OID: c.NewOID(), Name: "n"})
	txn.Put(&StorageContainer{OID: c.NewOID(), ShardIndex: 0, Files: map[string]FileRef{"id": {Path: "x", Size: 1}}, ColStats: map[string]types.ColumnStats{"id": {Min: types.NewInt(1), Max: types.NewInt(2)}}})
	txn.Put(&DeleteVector{OID: c.NewOID(), ShardIndex: 0})
	c.Commit(txn)

	data, err := EncodeCheckpoint(c.Snapshot(), c.NewOID())
	if err != nil {
		t.Fatal(err)
	}
	snap, _, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 7 || snap.Version() != 1 {
		t.Errorf("roundtrip len=%d v=%d", snap.Len(), snap.Version())
	}
	// Spot check a nested field survived.
	found := false
	snap.ForEach(KindStorageContainer, func(o Object) bool {
		sc := o.(*StorageContainer)
		if sc.Files["id"].Path == "x" && sc.ColStats["id"].Max.I == 2 {
			found = true
		}
		return true
	})
	if !found {
		t.Error("storage container fields lost in roundtrip")
	}
}

func TestCloneIndependence(t *testing.T) {
	tbl := &Table{OID: 1, Name: "t", Columns: types.Schema{{Name: "a", Type: types.Int64}}}
	c := tbl.Clone().(*Table)
	c.Columns[0].Name = "mutated"
	if tbl.Columns[0].Name != "a" {
		t.Error("clone must deep-copy schema")
	}
	sc := &StorageContainer{OID: 2, Files: map[string]FileRef{"a": {Path: "p"}}, ColStats: map[string]types.ColumnStats{}}
	sc2 := sc.Clone().(*StorageContainer)
	sc2.Files["a"] = FileRef{Path: "q"}
	if sc.Files["a"].Path != "p" {
		t.Error("clone must deep-copy files map")
	}
}

func TestSubStateString(t *testing.T) {
	if SubPending.String() != "PENDING" || SubActive.String() != "ACTIVE" ||
		SubPassive.String() != "PASSIVE" || SubRemoving.String() != "REMOVING" {
		t.Error("state names")
	}
}

func TestParseCatalogFile(t *testing.T) {
	kind, v, ok := ParseCatalogFile("cat/txn_0000000000000042.json")
	if !ok || kind != "txn" || v != 42 {
		t.Errorf("parse txn: %v %v %v", kind, v, ok)
	}
	kind, v, ok = ParseCatalogFile(CkptFileName(7))
	if !ok || kind != "ckpt" || v != 7 {
		t.Errorf("parse ckpt: %v %v %v", kind, v, ok)
	}
	if _, _, ok := ParseCatalogFile("foo.txt"); ok {
		t.Error("foreign file should not parse")
	}
}
