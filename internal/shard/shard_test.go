package shard

import (
	"testing"

	"eon/internal/catalog"
)

// buildSnap constructs a catalog with n nodes (optionally in subclusters),
// s segment shards plus the replica shard, and the given subscriptions.
type subSpec struct {
	node  string
	shard int
	state catalog.SubState
}

func buildSnap(t *testing.T, nodes map[string]string, segShards int, subs []subSpec) *catalog.Snapshot {
	t.Helper()
	c := catalog.New()
	txn := c.Begin()
	for name, sc := range nodes {
		txn.Put(&catalog.Node{OID: c.NewOID(), Name: name, Subcluster: sc})
	}
	for i := 0; i < segShards; i++ {
		txn.Put(&catalog.Shard{OID: c.NewOID(), Index: i, ShardKind: catalog.SegmentShard})
	}
	txn.Put(&catalog.Shard{OID: c.NewOID(), Index: catalog.ReplicaShard, ShardKind: catalog.ReplicaShardKind})
	for _, s := range subs {
		txn.Put(&catalog.Subscription{OID: c.NewOID(), Node: s.node, ShardIndex: s.shard, State: s.state})
	}
	if _, err := c.Commit(txn); err != nil {
		t.Fatal(err)
	}
	return c.Snapshot()
}

func TestCanTransition(t *testing.T) {
	allowed := []struct{ from, to catalog.SubState }{
		{catalog.SubPending, catalog.SubPassive},
		{catalog.SubPassive, catalog.SubActive},
		{catalog.SubActive, catalog.SubPending},
		{catalog.SubActive, catalog.SubRemoving},
	}
	for _, a := range allowed {
		if !CanTransition(a.from, a.to) {
			t.Errorf("%v -> %v should be allowed", a.from, a.to)
		}
	}
	denied := []struct{ from, to catalog.SubState }{
		{catalog.SubPending, catalog.SubActive}, // must pass through PASSIVE
		{catalog.SubRemoving, catalog.SubActive},
		{catalog.SubPassive, catalog.SubPending},
		{catalog.SubPending, catalog.SubRemoving},
	}
	for _, d := range denied {
		if CanTransition(d.from, d.to) {
			t.Errorf("%v -> %v should be denied", d.from, d.to)
		}
	}
}

func TestCanDrop(t *testing.T) {
	snap := buildSnap(t, map[string]string{"n1": "", "n2": ""}, 1, []subSpec{
		{"n1", 0, catalog.SubRemoving},
		{"n2", 0, catalog.SubActive},
	})
	sub := snap.SubscribersOf(0)[0]
	var removing *catalog.Subscription
	for _, s := range snap.SubscribersOf(0) {
		if s.State == catalog.SubRemoving {
			removing = s
		}
	}
	_ = sub
	if !CanDrop(snap, removing, 1) {
		t.Error("one other ACTIVE subscriber should permit drop at min=1")
	}
	if CanDrop(snap, removing, 2) {
		t.Error("min=2 with one other subscriber must block drop")
	}
}

func TestPlanRebalanceFreshCluster(t *testing.T) {
	snap := buildSnap(t, map[string]string{"n1": "", "n2": "", "n3": ""}, 3, nil)
	actions := PlanRebalance(snap, PlanOptions{ReplicationFactor: 2})

	// Every segment shard must gain 2 subscribers; every node the
	// replica shard.
	segCount := map[int]int{}
	replicaNodes := map[string]bool{}
	perNode := map[string]int{}
	for _, a := range actions {
		if a.Unsubscribe {
			t.Errorf("fresh cluster should not unsubscribe: %+v", a)
		}
		if a.ShardIndex == catalog.ReplicaShard {
			replicaNodes[a.Node] = true
		} else {
			segCount[a.ShardIndex]++
			perNode[a.Node]++
		}
	}
	for i := 0; i < 3; i++ {
		if segCount[i] != 2 {
			t.Errorf("shard %d gets %d subscribers, want 2", i, segCount[i])
		}
	}
	if len(replicaNodes) != 3 {
		t.Errorf("replica shard on %d nodes, want 3", len(replicaNodes))
	}
	// Balanced: 6 segment subscriptions over 3 nodes = 2 each.
	for n, c := range perNode {
		if c != 2 {
			t.Errorf("node %s has %d segment subscriptions, want 2", n, c)
		}
	}
}

func TestPlanRebalanceIdempotent(t *testing.T) {
	subs := []subSpec{
		{"n1", 0, catalog.SubActive}, {"n2", 0, catalog.SubActive},
		{"n1", 1, catalog.SubActive}, {"n2", 1, catalog.SubActive},
		{"n1", catalog.ReplicaShard, catalog.SubActive},
		{"n2", catalog.ReplicaShard, catalog.SubActive},
	}
	snap := buildSnap(t, map[string]string{"n1": "", "n2": ""}, 2, subs)
	actions := PlanRebalance(snap, PlanOptions{ReplicationFactor: 2})
	if len(actions) != 0 {
		t.Errorf("already balanced cluster should plan nothing, got %+v", actions)
	}
}

func TestPlanRebalanceNewNodeGetsSubscriptions(t *testing.T) {
	subs := []subSpec{
		{"n1", 0, catalog.SubActive}, {"n1", 1, catalog.SubActive},
		{"n1", catalog.ReplicaShard, catalog.SubActive},
	}
	snap := buildSnap(t, map[string]string{"n1": "", "n2": ""}, 2, subs)
	actions := PlanRebalance(snap, PlanOptions{ReplicationFactor: 2})
	n2Gets := 0
	for _, a := range actions {
		if a.Node == "n2" && !a.Unsubscribe {
			n2Gets++
		}
	}
	// n2 must pick up both segment shards (to reach k=2) plus replica.
	if n2Gets != 3 {
		t.Errorf("n2 gains %d subscriptions, want 3 (2 segment + replica): %+v", n2Gets, actions)
	}
}

func TestPlanRebalanceDrain(t *testing.T) {
	subs := []subSpec{
		{"n1", 0, catalog.SubActive}, {"n2", 0, catalog.SubActive},
		{"n1", catalog.ReplicaShard, catalog.SubActive},
		{"n2", catalog.ReplicaShard, catalog.SubActive},
		{"n3", catalog.ReplicaShard, catalog.SubActive},
	}
	snap := buildSnap(t, map[string]string{"n1": "", "n2": "", "n3": ""}, 1, subs)
	actions := PlanRebalance(snap, PlanOptions{ReplicationFactor: 2, DrainNodes: []string{"n1"}})

	var subscribes, unsubscribes []Action
	for _, a := range actions {
		if a.Unsubscribe {
			unsubscribes = append(unsubscribes, a)
		} else {
			subscribes = append(subscribes, a)
		}
	}
	// n3 must replace n1 on shard 0 before n1 unsubscribes.
	foundReplacement := false
	for _, a := range subscribes {
		if a.Node == "n3" && a.ShardIndex == 0 {
			foundReplacement = true
		}
	}
	if !foundReplacement {
		t.Errorf("drain should add replacement subscription: %+v", actions)
	}
	if len(unsubscribes) != 2 { // n1's segment + replica subscriptions
		t.Errorf("unsubscribes = %+v", unsubscribes)
	}
	for _, a := range subscribes {
		if a.Node == "n1" {
			t.Error("drained node must not gain subscriptions")
		}
	}
}

func TestPlanRebalanceSubclusterCoverage(t *testing.T) {
	// Two subclusters; each must cover every shard (§4.3).
	subs := []subSpec{
		{"a1", 0, catalog.SubActive}, {"a1", 1, catalog.SubActive},
		{"a2", 0, catalog.SubActive}, {"a2", 1, catalog.SubActive},
	}
	snap := buildSnap(t, map[string]string{"a1": "A", "a2": "A", "b1": "B", "b2": "B"}, 2, subs)
	actions := PlanRebalance(snap, PlanOptions{ReplicationFactor: 2})
	covered := map[int]bool{}
	for _, a := range actions {
		if !a.Unsubscribe && (a.Node == "b1" || a.Node == "b2") && a.ShardIndex >= 0 {
			covered[a.ShardIndex] = true
		}
	}
	if !covered[0] || !covered[1] {
		t.Errorf("subcluster B must cover all shards: %+v", actions)
	}
}

func TestCheckViability(t *testing.T) {
	subs := []subSpec{
		{"n1", 0, catalog.SubActive}, {"n2", 0, catalog.SubActive},
		{"n1", 1, catalog.SubActive}, {"n3", 1, catalog.SubActive},
		{"n1", catalog.ReplicaShard, catalog.SubActive},
		{"n2", catalog.ReplicaShard, catalog.SubActive},
		{"n3", catalog.ReplicaShard, catalog.SubActive},
	}
	snap := buildSnap(t, map[string]string{"n1": "", "n2": "", "n3": ""}, 2, subs)

	v := CheckViability(snap, map[string]bool{"n1": true, "n2": true, "n3": true})
	if !v.OK {
		t.Errorf("full cluster should be viable: %+v", v)
	}
	// n1 down: n2 covers shard 0, n3 covers shard 1, quorum 2/3.
	v = CheckViability(snap, map[string]bool{"n2": true, "n3": true})
	if !v.OK {
		t.Errorf("one node down should stay viable: %+v", v)
	}
	// Two nodes down: no quorum.
	v = CheckViability(snap, map[string]bool{"n1": true})
	if v.OK || v.Quorum {
		t.Errorf("1/3 up must fail quorum: %+v", v)
	}
}

func TestCheckViabilityShardCoverage(t *testing.T) {
	// Shard 1 is only on n3; with n3 down there is quorum but no
	// coverage.
	subs := []subSpec{
		{"n1", 0, catalog.SubActive}, {"n2", 0, catalog.SubActive},
		{"n3", 1, catalog.SubActive},
		{"n1", catalog.ReplicaShard, catalog.SubActive},
		{"n2", catalog.ReplicaShard, catalog.SubActive},
	}
	snap := buildSnap(t, map[string]string{"n1": "", "n2": "", "n3": ""}, 2, subs)
	v := CheckViability(snap, map[string]bool{"n1": true, "n2": true})
	if v.OK {
		t.Error("uncovered shard must make cluster unviable")
	}
	if !v.Quorum {
		t.Error("quorum should be satisfied")
	}
}

func TestViabilityIgnoresNonActiveSubscriptions(t *testing.T) {
	subs := []subSpec{
		{"n1", 0, catalog.SubPending},
		{"n2", 0, catalog.SubPassive},
		{"n1", catalog.ReplicaShard, catalog.SubActive},
		{"n2", catalog.ReplicaShard, catalog.SubActive},
	}
	snap := buildSnap(t, map[string]string{"n1": "", "n2": ""}, 1, subs)
	v := CheckViability(snap, map[string]bool{"n1": true, "n2": true})
	if v.OK {
		t.Error("PENDING/PASSIVE subscriptions must not satisfy coverage")
	}
}

func TestMergeoutCoordinators(t *testing.T) {
	subs := []subSpec{
		{"n1", 0, catalog.SubActive}, {"n2", 0, catalog.SubActive},
		{"n1", 1, catalog.SubActive}, {"n2", 1, catalog.SubActive},
		{"n1", 2, catalog.SubActive}, {"n2", 2, catalog.SubActive},
		{"n1", 3, catalog.SubActive}, {"n2", 3, catalog.SubActive},
	}
	snap := buildSnap(t, map[string]string{"n1": "", "n2": ""}, 4, subs)
	up := map[string]bool{"n1": true, "n2": true}
	coords := MergeoutCoordinators(snap, up, "")
	if len(coords) != 4 {
		t.Fatalf("coordinators = %v", coords)
	}
	load := map[string]int{}
	for _, n := range coords {
		load[n]++
	}
	// 4 shards over 2 nodes: 2 each (balanced).
	if load["n1"] != 2 || load["n2"] != 2 {
		t.Errorf("coordinator load = %v", load)
	}
}

func TestMergeoutCoordinatorFailover(t *testing.T) {
	subs := []subSpec{
		{"n1", 0, catalog.SubActive}, {"n2", 0, catalog.SubActive},
	}
	snap := buildSnap(t, map[string]string{"n1": "", "n2": ""}, 1, subs)
	coords := MergeoutCoordinators(snap, map[string]bool{"n2": true}, "")
	if coords[0] != "n2" {
		t.Errorf("coordinator should fail over to n2, got %v", coords)
	}
}

func TestMergeoutCoordinatorSubclusterIsolation(t *testing.T) {
	subs := []subSpec{
		{"a1", 0, catalog.SubActive}, {"b1", 0, catalog.SubActive},
	}
	snap := buildSnap(t, map[string]string{"a1": "A", "b1": "B"}, 1, subs)
	up := map[string]bool{"a1": true, "b1": true}
	coords := MergeoutCoordinators(snap, up, "B")
	if coords[0] != "b1" {
		t.Errorf("coordination should be isolated to subcluster B, got %v", coords)
	}
	// Subcluster with no subscriber falls back to any subscriber.
	coords = MergeoutCoordinators(snap, map[string]bool{"a1": true}, "B")
	if coords[0] != "a1" {
		t.Errorf("fallback should pick a1, got %v", coords)
	}
}
