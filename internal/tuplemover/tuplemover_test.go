package tuplemover

import (
	"testing"

	"eon/internal/catalog"
)

func containers(rows ...int64) []*catalog.StorageContainer {
	out := make([]*catalog.StorageContainer, len(rows))
	for i, r := range rows {
		out[i] = &catalog.StorageContainer{OID: catalog.OID(i + 1), RowCount: r}
	}
	return out
}

func TestStratum(t *testing.T) {
	base := 8.0
	cases := map[int64]int{1: 0, 7: 0, 8: 1, 63: 1, 64: 2, 511: 2, 512: 3}
	for rows, want := range cases {
		if got := Stratum(rows, base); got != want {
			t.Errorf("Stratum(%d) = %d, want %d", rows, got, want)
		}
	}
	if Stratum(0, base) != 0 {
		t.Error("zero rows is stratum 0")
	}
}

func TestSelectJobsSameStratumMerged(t *testing.T) {
	// Four containers of ~same size: one job merging all four.
	cs := containers(10, 12, 11, 13)
	jobs := SelectJobs(cs, nil, Policy{StrataBase: 8, FanIn: 4, MaxFanIn: 16})
	if len(jobs) != 1 || len(jobs[0].Containers) != 4 {
		t.Fatalf("jobs = %+v", jobs)
	}
}

func TestSelectJobsBelowFanInNotMerged(t *testing.T) {
	cs := containers(10, 12, 11)
	jobs := SelectJobs(cs, nil, Policy{StrataBase: 8, FanIn: 4, MaxFanIn: 16})
	if len(jobs) != 0 {
		t.Fatalf("3 containers below fan-in should not merge: %+v", jobs)
	}
}

func TestSelectJobsRespectsStrata(t *testing.T) {
	// Two small + two huge: different strata, no merging at fan-in 4,
	// and never merged together at fan-in 2.
	cs := containers(2, 3, 100000, 120000)
	jobs := SelectJobs(cs, nil, Policy{StrataBase: 8, FanIn: 2, MaxFanIn: 16})
	for _, j := range jobs {
		st := Stratum(j.Containers[0].RowCount, 8)
		for _, sc := range j.Containers {
			if Stratum(sc.RowCount, 8) != st {
				t.Errorf("job mixes strata: %+v", j)
			}
		}
	}
	if len(jobs) != 2 {
		t.Errorf("expected 2 same-stratum jobs, got %d", len(jobs))
	}
}

func TestSelectJobsMaxFanIn(t *testing.T) {
	cs := containers(1, 1, 1, 1, 1, 1, 1, 1, 1, 1)
	jobs := SelectJobs(cs, nil, Policy{StrataBase: 8, FanIn: 2, MaxFanIn: 4})
	for _, j := range jobs {
		if len(j.Containers) > 4 {
			t.Errorf("job exceeds max fan-in: %d", len(j.Containers))
		}
	}
}

func TestSelectJobsPurge(t *testing.T) {
	cs := containers(100, 100)
	dv := map[catalog.OID]int64{cs[0].OID: 50} // 50% deleted
	jobs := SelectJobs(cs, dv, Policy{StrataBase: 8, FanIn: 4, MaxFanIn: 16, PurgeFraction: 0.2})
	foundPurge := false
	for _, j := range jobs {
		if j.Purge {
			foundPurge = true
			if len(j.Containers) != 1 || j.Containers[0].OID != cs[0].OID {
				t.Errorf("purge job = %+v", j)
			}
		}
	}
	if !foundPurge {
		t.Error("high-delete container should be selected for purge")
	}
}

func TestSelectJobsContainerCountPressure(t *testing.T) {
	// 6 containers in different strata (no fan-in merging), cap at 4.
	cs := containers(1, 10, 100, 1000, 10000, 100000)
	jobs := SelectJobs(cs, nil, Policy{StrataBase: 2, FanIn: 4, MaxFanIn: 8, MaxContainers: 4})
	if len(jobs) == 0 {
		t.Fatal("container-count pressure should force a merge")
	}
	// The forced job merges the smallest containers.
	j := jobs[len(jobs)-1]
	if len(j.Containers) < 2 {
		t.Errorf("forced job too small: %+v", j)
	}
	if j.Containers[0].RowCount != 1 {
		t.Errorf("forced merge should start with smallest: %+v", j.Containers)
	}
}

func TestSelectJobsNoDoubleUse(t *testing.T) {
	cs := containers(10, 11, 12, 13, 100, 100)
	dv := map[catalog.OID]int64{cs[4].OID: 90}
	jobs := SelectJobs(cs, dv, Policy{StrataBase: 8, FanIn: 2, MaxFanIn: 4, PurgeFraction: 0.5, MaxContainers: 2})
	seen := map[catalog.OID]bool{}
	for _, j := range jobs {
		for _, sc := range j.Containers {
			if seen[sc.OID] {
				t.Errorf("container %d in two jobs", sc.OID)
			}
			seen[sc.OID] = true
		}
	}
}

// Each tuple is merged a small fixed number of times: simulate repeated
// loads + mergeout rounds and track per-tuple merge counts.
func TestMergeAmplificationBounded(t *testing.T) {
	type sim struct {
		rows   int64
		merges int // max merges any tuple in this container experienced
	}
	var live []sim
	policy := Policy{StrataBase: 8, FanIn: 8, MaxFanIn: 8, MaxContainers: 0}
	nextOID := catalog.OID(1)

	maxMerges := 0
	for load := 0; load < 512; load++ {
		live = append(live, sim{rows: 1})
		// Run mergeout until quiescent.
		for {
			cs := make([]*catalog.StorageContainer, len(live))
			for i, s := range live {
				cs[i] = &catalog.StorageContainer{OID: nextOID + catalog.OID(i), RowCount: s.rows}
			}
			jobs := SelectJobs(cs, nil, policy)
			if len(jobs) == 0 {
				break
			}
			// Apply the jobs.
			drop := map[catalog.OID]bool{}
			var newContainers []sim
			for _, j := range jobs {
				var rows int64
				merges := 0
				for _, sc := range j.Containers {
					drop[sc.OID] = true
					idx := int(sc.OID - nextOID)
					rows += live[idx].rows
					if live[idx].merges > merges {
						merges = live[idx].merges
					}
				}
				newContainers = append(newContainers, sim{rows: rows, merges: merges + 1})
			}
			var kept []sim
			for i, s := range live {
				if !drop[nextOID+catalog.OID(i)] {
					kept = append(kept, s)
				}
			}
			nextOID += catalog.OID(len(live))
			live = append(kept, newContainers...)
		}
		for _, s := range live {
			if s.merges > maxMerges {
				maxMerges = s.merges
			}
		}
	}
	// 512 loads at fan-in 8: tuples should be merged about log8(512)=3
	// times; allow slack but reject linear behaviour.
	if maxMerges > 6 {
		t.Errorf("merge amplification %d too high for 512 loads at fan-in 8", maxMerges)
	}
	if maxMerges == 0 {
		t.Error("simulation never merged anything")
	}
}

func TestDefaultPolicySane(t *testing.T) {
	p := DefaultPolicy()
	if p.FanIn < 2 || p.MaxFanIn < p.FanIn || p.StrataBase <= 1 {
		t.Errorf("default policy = %+v", p)
	}
}
