// Package types defines the scalar type system, single-value datums, typed
// column vectors and relational schemas used throughout the engine.
//
// The engine is columnar: data flows between operators as Batches of
// Vectors, each Vector holding one column for a run of rows. A small
// row-oriented Datum/Row representation exists for loading, literals and
// test construction.
package types

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Type identifies a scalar SQL type.
type Type uint8

// The supported scalar types. Date and Timestamp share int64 physical
// storage with Int64 (days and microseconds since the Unix epoch).
const (
	Unknown Type = iota
	Int64
	Float64
	Varchar
	Bool
	Date
	Timestamp
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "INTEGER"
	case Float64:
		return "FLOAT"
	case Varchar:
		return "VARCHAR"
	case Bool:
		return "BOOLEAN"
	case Date:
		return "DATE"
	case Timestamp:
		return "TIMESTAMP"
	default:
		return "UNKNOWN"
	}
}

// Physical returns the physical storage class of the type: Int64, Float64,
// Varchar or Bool. Date and Timestamp are physically Int64.
func (t Type) Physical() Type {
	switch t {
	case Date, Timestamp:
		return Int64
	default:
		return t
	}
}

// ParseType converts a SQL type name to a Type. It accepts the common
// aliases (INT, BIGINT, DOUBLE, TEXT, ...).
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "INT", "INTEGER", "BIGINT", "INT8", "SMALLINT", "TINYINT":
		return Int64, nil
	case "FLOAT", "FLOAT8", "DOUBLE", "DOUBLE PRECISION", "REAL", "NUMERIC":
		return Float64, nil
	case "VARCHAR", "CHAR", "TEXT", "STRING":
		return Varchar, nil
	case "BOOL", "BOOLEAN":
		return Bool, nil
	case "DATE":
		return Date, nil
	case "TIMESTAMP", "DATETIME", "TIMESTAMPTZ":
		return Timestamp, nil
	default:
		return Unknown, fmt.Errorf("types: unknown type %q", s)
	}
}

// Datum is a single nullable scalar value. The K field selects which value
// field is meaningful; Null overrides all of them.
type Datum struct {
	K    Type
	Null bool
	I    int64
	F    float64
	S    string
	B    bool
}

// NullDatum returns the NULL datum of type t.
func NullDatum(t Type) Datum { return Datum{K: t, Null: true} }

// NewInt returns an Int64 datum.
func NewInt(v int64) Datum { return Datum{K: Int64, I: v} }

// NewFloat returns a Float64 datum.
func NewFloat(v float64) Datum { return Datum{K: Float64, F: v} }

// NewString returns a Varchar datum.
func NewString(v string) Datum { return Datum{K: Varchar, S: v} }

// NewBool returns a Bool datum.
func NewBool(v bool) Datum { return Datum{K: Bool, B: v} }

// NewDate returns a Date datum holding days since the Unix epoch.
func NewDate(days int64) Datum { return Datum{K: Date, I: days} }

// NewTimestamp returns a Timestamp datum holding microseconds since the
// Unix epoch.
func NewTimestamp(micros int64) Datum { return Datum{K: Timestamp, I: micros} }

// DateFromTime converts a time.Time to a Date datum (UTC day).
func DateFromTime(t time.Time) Datum {
	return NewDate(t.UTC().Unix() / 86400)
}

// IsNull reports whether the datum is NULL.
func (d Datum) IsNull() bool { return d.Null }

// String renders the datum for display and CSV output.
func (d Datum) String() string {
	if d.Null {
		return "NULL"
	}
	switch d.K.Physical() {
	case Int64:
		if d.K == Date {
			return time.Unix(d.I*86400, 0).UTC().Format("2006-01-02")
		}
		if d.K == Timestamp {
			return time.Unix(d.I/1e6, (d.I%1e6)*1000).UTC().Format("2006-01-02 15:04:05")
		}
		return strconv.FormatInt(d.I, 10)
	case Float64:
		return strconv.FormatFloat(d.F, 'g', -1, 64)
	case Varchar:
		return d.S
	case Bool:
		return strconv.FormatBool(d.B)
	}
	return "?"
}

// Compare orders two datums of the same type. NULL sorts before all
// non-NULL values. The result is -1, 0 or +1.
func (d Datum) Compare(o Datum) int {
	if d.Null || o.Null {
		switch {
		case d.Null && o.Null:
			return 0
		case d.Null:
			return -1
		default:
			return 1
		}
	}
	switch d.K.Physical() {
	case Int64:
		switch {
		case d.I < o.I:
			return -1
		case d.I > o.I:
			return 1
		}
		return 0
	case Float64:
		switch {
		case d.F < o.F:
			return -1
		case d.F > o.F:
			return 1
		}
		return 0
	case Varchar:
		return strings.Compare(d.S, o.S)
	case Bool:
		switch {
		case !d.B && o.B:
			return -1
		case d.B && !o.B:
			return 1
		}
		return 0
	}
	return 0
}

// Equal reports whether two datums are equal (NULL equals NULL here; SQL
// three-valued logic is applied at the expression layer, not in storage).
func (d Datum) Equal(o Datum) bool { return d.Compare(o) == 0 }

// Row is a tuple of datums, positionally aligned with a Schema.
type Row []Datum

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// String renders the row as a pipe-separated record.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, d := range r {
		parts[i] = d.String()
	}
	return strings.Join(parts, "|")
}

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns.
type Schema []Column

// ColumnIndex returns the position of the named column, or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Types returns the column types in order.
func (s Schema) Types() []Type {
	out := make([]Type, len(s))
	for i, c := range s {
		out[i] = c.Type
	}
	return out
}

// Project returns the schema restricted to the given column positions.
func (s Schema) Project(idx []int) Schema {
	out := make(Schema, len(idx))
	for i, j := range idx {
		out[i] = s[j]
	}
	return out
}

// String renders the schema as "name TYPE, ...".
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.Name + " " + c.Type.String()
	}
	return strings.Join(parts, ", ")
}
