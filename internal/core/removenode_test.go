package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eon/internal/shard"
	"eon/internal/types"
)

// setupMoreSales appends rows sale_id = base+1 .. base+rows to sales.
func setupMoreSales(t *testing.T, db *DB, base, rows int) {
	t.Helper()
	batch := types.NewBatch(types.Schema{
		{Name: "sale_id", Type: types.Int64},
		{Name: "customer", Type: types.Varchar},
		{Name: "price", Type: types.Float64},
		{Name: "region", Type: types.Varchar},
	}, rows)
	for i := 0; i < rows; i++ {
		batch.AppendRow(types.Row{
			types.NewInt(int64(base + i + 1)),
			types.NewString("extra"),
			types.NewFloat(1),
			types.NewString("east"),
		})
	}
	if err := db.LoadRows("sales", batch); err != nil {
		t.Fatal(err)
	}
}

// A query parked on a removed node's slots must be woken so it can
// re-plan onto the surviving nodes: RemoveNode has to kick the slot
// waiters the same way KillNode does, or the waiter sleeps forever on a
// node that no longer exists.
func TestRemoveNodeKicksSlotWaiters(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	setupSales(t, db, 60)

	// Exhaust node3's slots so any query whose plan includes node3 parks.
	held := map[string]int{"node3": db.cfg.ExecSlots}
	if !db.slots.acquire(held, nil) {
		t.Fatal("could not occupy node3 slots")
	}

	results := make(chan error, 16)
	launch := func() {
		go func() {
			_, err := db.NewSession().Query(`SELECT COUNT(*) FROM sales`)
			results <- err
		}()
	}
	// Launch queries until one parks on the saturated node (placement is
	// load-balanced, so the very first almost always does).
	launched, finished, parked := 0, 0, false
	for try := 0; try < 10 && !parked; try++ {
		launch()
		launched++
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if db.QueueDepth() > 0 {
				parked = true
				break
			}
			if launched-finished == 0 {
				break
			}
			select {
			case err := <-results:
				finished++
				if err != nil {
					t.Errorf("pre-removal query failed: %v", err)
				}
			default:
				time.Sleep(2 * time.Millisecond)
			}
		}
	}
	if !parked {
		t.Fatal("no query parked on node3's slots; cannot exercise the kick")
	}

	if err := db.RemoveNode("node3"); err != nil {
		t.Fatal(err)
	}

	// The parked query must wake, fail validation against the vanished
	// node, and retry successfully on node1/node2.
	watchdog := time.After(10 * time.Second)
	for finished < launched {
		select {
		case err := <-results:
			finished++
			if err != nil {
				t.Errorf("query after RemoveNode: %v", err)
			}
		case <-watchdog:
			t.Fatalf("query still parked %d finished of %d: RemoveNode did not kick slot waiters", finished, launched)
		}
	}
	if db.IsShutdown() {
		t.Fatal("cluster shut down")
	}
}

// RemoveNode commits the catalog deletion while the node is still up, so
// a concurrent query can be planned against the pre-removal snapshot.
// Every such query must either retry to an exact answer or fail cleanly,
// and RemoveNode must re-check cluster viability afterwards.
func TestRemoveNodeConcurrentQueries(t *testing.T) {
	db := newTestDB(t, ModeEon, 4, 4)
	setupSales(t, db, 80)
	var wantSum int64
	for i := 1; i <= 80; i++ {
		wantSum += int64(i)
	}

	var wrong, okCount, failed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.NewSession()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.Query(`SELECT COUNT(*), SUM(sale_id) FROM sales`)
				if err != nil {
					failed.Add(1) // clean failure is acceptable mid-removal
					continue
				}
				row := res.Batch.Row(0)
				if row[0].I != 80 || row[1].I != wantSum {
					wrong.Add(1)
				}
				okCount.Add(1)
			}
		}()
	}

	time.Sleep(10 * time.Millisecond) // let the stream get going
	if err := db.RemoveNode("node4"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // keep querying post-removal
	close(stop)
	wg.Wait()

	if n := wrong.Load(); n > 0 {
		t.Fatalf("%d queries returned wrong results during node removal", n)
	}
	if okCount.Load() == 0 {
		t.Fatal("no query succeeded around the removal")
	}
	if db.IsShutdown() {
		t.Fatal("viable cluster shut down by RemoveNode")
	}
	init, err := db.anyUpNode()
	if err != nil {
		t.Fatal(err)
	}
	snap := init.catalog.Snapshot()
	if _, ok := snap.NodeByName("node4"); ok {
		t.Fatal("node4 still in catalog")
	}
	if subs := snap.Subscriptions("node4"); len(subs) != 0 {
		t.Fatalf("node4 still holds %d subscriptions", len(subs))
	}
	if v := shard.CheckViability(snap, db.UpNodes()); !v.OK {
		t.Fatalf("post-removal cluster not viable: %s", v.Reason)
	}
	// The node's slot pool is gone with it.
	if _, ok := db.slots.cap["node4"]; ok {
		t.Fatal("removed node still registered in the slot manager")
	}
}
