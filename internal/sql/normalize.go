package sql

import (
	"strings"

	"eon/internal/expr"
)

// Normalize canonicalizes a SQL text for use as a plan-cache key without
// running the lexer: it strips "--" comments, collapses runs of
// whitespace to a single space, and uppercases everything outside
// single-quoted string literals. Two texts that normalize equal lex and
// parse to the same statement (string literals and quote escaping are
// preserved byte-for-byte), so a cache hit may legitimately skip the
// front end entirely. The pass is a single scan with one output buffer —
// deliberately much cheaper than tokenizing.
func Normalize(src string) string {
	var sb strings.Builder
	sb.Grow(len(src))
	inStr := false
	pendingSpace := false
	wrote := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		if inStr {
			sb.WriteByte(c)
			if c == '\'' {
				if i+1 < len(src) && src[i+1] == '\'' {
					sb.WriteByte('\'')
					i++
					continue
				}
				inStr = false
			}
			continue
		}
		switch {
		case c == '\'':
			if pendingSpace && wrote {
				sb.WriteByte(' ')
			}
			pendingSpace = false
			wrote = true
			inStr = true
			sb.WriteByte(c)
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
			pendingSpace = true
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			pendingSpace = true
		default:
			if pendingSpace && wrote {
				sb.WriteByte(' ')
			}
			pendingSpace = false
			wrote = true
			if c >= 'a' && c <= 'z' {
				c -= 'a' - 'A'
			}
			sb.WriteByte(c)
		}
	}
	// Trailing semicolons are insignificant; strip them so "q" and "q;"
	// share a cache entry.
	out := sb.String()
	for strings.HasSuffix(out, ";") {
		out = strings.TrimRight(out[:len(out)-1], " ")
	}
	return out
}

// NumParams returns the number of bind parameters a statement expects:
// the highest ordinal referenced anywhere in the tree (positional "?"
// placeholders are numbered in appearance order by the parser).
func NumParams(stmt Statement) int {
	sel, ok := stmt.(*Select)
	if !ok {
		return 0
	}
	max := 0
	consider := func(e expr.Expr) {
		if e == nil {
			return
		}
		if n := expr.MaxParam(e); n > max {
			max = n
		}
	}
	for _, it := range sel.Items {
		consider(it.Expr)
		if it.Agg != nil {
			consider(it.Agg.Arg)
		}
	}
	for _, j := range sel.Joins {
		consider(j.On)
	}
	consider(sel.Where)
	for _, g := range sel.GroupBy {
		consider(g)
	}
	consider(sel.Having)
	for _, o := range sel.OrderBy {
		consider(o.Expr)
	}
	return max
}
