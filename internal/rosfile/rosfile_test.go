package rosfile

import (
	"testing"
	"testing/quick"

	"eon/internal/types"
)

func intVec(xs ...int64) *types.Vector {
	v := types.NewVector(types.Int64, len(xs))
	for _, x := range xs {
		v.Append(types.NewInt(x))
	}
	return v
}

func TestWriteReadColumn(t *testing.T) {
	v := intVec(1, 2, 3, 4, 5, 6, 7, 8)
	img := WriteColumn(v, WriteOptions{BlockRows: 3, Sorted: true})
	r, err := NewReader(img)
	if err != nil {
		t.Fatal(err)
	}
	if r.RowCount() != 8 || r.Type() != types.Int64 {
		t.Fatalf("rowcount=%d type=%v", r.RowCount(), r.Type())
	}
	if len(r.Footer().Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(r.Footer().Blocks))
	}
	all, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		if all.Ints[i] != i+1 {
			t.Fatalf("value %d = %d", i, all.Ints[i])
		}
	}
}

func TestBlockMinMax(t *testing.T) {
	v := intVec(10, 20, 30, 40, 50, 60)
	img := WriteColumn(v, WriteOptions{BlockRows: 2})
	r, err := NewReader(img)
	if err != nil {
		t.Fatal(err)
	}
	blocks := r.Footer().Blocks
	if blocks[0].Min.I != 10 || blocks[0].Max.I != 20 {
		t.Errorf("block 0 min/max = %v/%v", blocks[0].Min, blocks[0].Max)
	}
	if blocks[2].Min.I != 50 || blocks[2].Max.I != 60 {
		t.Errorf("block 2 min/max = %v/%v", blocks[2].Min, blocks[2].Max)
	}
	if blocks[1].RowStart != 2 || blocks[1].RowCount != 2 {
		t.Errorf("block 1 position = %d+%d", blocks[1].RowStart, blocks[1].RowCount)
	}
}

func TestNullCounts(t *testing.T) {
	v := types.NewVector(types.Varchar, 4)
	v.Append(types.NewString("a"))
	v.Append(types.NullDatum(types.Varchar))
	v.Append(types.NullDatum(types.Varchar))
	v.Append(types.NewString("b"))
	img := WriteColumn(v, WriteOptions{})
	r, err := NewReader(img)
	if err != nil {
		t.Fatal(err)
	}
	if r.Footer().Blocks[0].NullCount != 2 {
		t.Errorf("nullcount = %d", r.Footer().Blocks[0].NullCount)
	}
	all, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !all.IsNull(1) || !all.IsNull(2) || all.IsNull(0) {
		t.Error("null roundtrip wrong")
	}
}

func TestReadBlockIndividually(t *testing.T) {
	v := intVec(1, 2, 3, 4, 5)
	img := WriteColumn(v, WriteOptions{BlockRows: 2})
	r, err := NewReader(img)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := r.ReadBlock(1)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Len() != 2 || b1.Ints[0] != 3 {
		t.Errorf("block 1 = %v", b1.Ints)
	}
	if _, err := r.ReadBlock(99); err == nil {
		t.Error("out-of-range block should error")
	}
}

func TestBlockForRow(t *testing.T) {
	v := intVec(1, 2, 3, 4, 5, 6, 7)
	img := WriteColumn(v, WriteOptions{BlockRows: 3})
	r, _ := NewReader(img)
	cases := map[int64]int{0: 0, 2: 0, 3: 1, 6: 2}
	for row, want := range cases {
		if got := r.BlockForRow(row); got != want {
			t.Errorf("BlockForRow(%d) = %d, want %d", row, got, want)
		}
	}
	if r.BlockForRow(100) != -1 {
		t.Error("out of range row should be -1")
	}
}

func TestEmptyColumn(t *testing.T) {
	v := types.NewVector(types.Float64, 0)
	img := WriteColumn(v, WriteOptions{})
	r, err := NewReader(img)
	if err != nil {
		t.Fatal(err)
	}
	if r.RowCount() != 0 || len(r.Footer().Blocks) != 0 {
		t.Error("empty column should have no blocks")
	}
	all, err := r.ReadAll()
	if err != nil || all.Len() != 0 {
		t.Error("empty readall")
	}
}

func TestCorruptDetection(t *testing.T) {
	v := intVec(1, 2, 3)
	img := WriteColumn(v, WriteOptions{})
	if _, err := NewReader(img[:4]); err == nil {
		t.Error("truncated file should fail")
	}
	bad := append([]byte{}, img...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := NewReader(bad); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := NewReader(nil); err == nil {
		t.Error("nil input should fail")
	}
}

// Property: any int64 column roundtrips through the file format.
func TestQuickRoundtrip(t *testing.T) {
	f := func(xs []int64) bool {
		v := intVec(xs...)
		img := WriteColumn(v, WriteOptions{BlockRows: 4})
		r, err := NewReader(img)
		if err != nil {
			return false
		}
		all, err := r.ReadAll()
		if err != nil || all.Len() != len(xs) {
			return false
		}
		for i, x := range xs {
			if all.Ints[i] != x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: footer stats bound every value in each block.
func TestQuickStatsBound(t *testing.T) {
	f := func(xs []int64) bool {
		if len(xs) == 0 {
			return true
		}
		v := intVec(xs...)
		img := WriteColumn(v, WriteOptions{BlockRows: 3})
		r, err := NewReader(img)
		if err != nil {
			return false
		}
		for bi, blk := range r.Footer().Blocks {
			data, err := r.ReadBlock(bi)
			if err != nil {
				return false
			}
			for i := 0; i < data.Len(); i++ {
				x := data.Ints[i]
				if x < blk.Min.I || x > blk.Max.I {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBundleRoundtrip(t *testing.T) {
	a := WriteColumn(intVec(1, 2, 3), WriteOptions{})
	sVec := types.NewVector(types.Varchar, 2)
	sVec.Append(types.NewString("x"))
	sVec.Append(types.NewString("y"))
	b := WriteColumn(sVec, WriteOptions{})
	img, err := BuildBundle([]string{"id", "name"}, [][]byte{a, b})
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := OpenBundle(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundle.Names()) != 2 {
		t.Fatalf("names = %v", bundle.Names())
	}
	r, err := bundle.Open("name")
	if err != nil {
		t.Fatal(err)
	}
	all, err := r.ReadAll()
	if err != nil || all.Strs[1] != "y" {
		t.Errorf("bundle column read: %v %v", err, all)
	}
	if _, err := bundle.Open("missing"); err == nil {
		t.Error("missing column should error")
	}
}

func TestBundleMismatchedInputs(t *testing.T) {
	if _, err := BuildBundle([]string{"a"}, nil); err == nil {
		t.Error("mismatched names/images should fail")
	}
}

func TestBundleCorrupt(t *testing.T) {
	if _, err := OpenBundle([]byte{1, 2, 3}); err == nil {
		t.Error("short bundle should fail")
	}
	img, _ := BuildBundle([]string{"a"}, [][]byte{WriteColumn(intVec(1), WriteOptions{})})
	bad := append([]byte{}, img...)
	bad[len(bad)-2] ^= 0xFF
	if _, err := OpenBundle(bad); err == nil {
		t.Error("corrupt magic should fail")
	}
}

func TestStringMinMaxInFooter(t *testing.T) {
	v := types.NewVector(types.Varchar, 3)
	v.Append(types.NewString("melon"))
	v.Append(types.NewString("apple"))
	v.Append(types.NewString("zebra"))
	img := WriteColumn(v, WriteOptions{})
	r, _ := NewReader(img)
	blk := r.Footer().Blocks[0]
	if blk.Min.S != "apple" || blk.Max.S != "zebra" {
		t.Errorf("string min/max = %q/%q", blk.Min.S, blk.Max.S)
	}
}
