package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"eon/internal/core"
	"eon/internal/workload"
)

// Fig11aSeries is one cluster configuration's throughput curve in
// Figure 11a: queries per minute at each concurrency level.
type Fig11aSeries struct {
	Label   string
	Threads []int
	QPM     []float64
}

// Fig11aOptions tunes the elastic-throughput experiment.
type Fig11aOptions struct {
	Scale  float64
	Window time.Duration // measurement window per point
	// Threads are the concurrency levels (paper: 10, 30, 50, 70).
	Threads []int
	// EonNodeCounts are the Eon cluster sizes at 3 shards (paper: 3, 6,
	// 9).
	EonNodeCounts []int
	// EnterpriseNodes sizes the Enterprise comparison (paper: 9).
	EnterpriseNodes int
}

// Fig11a reproduces Figure 11a: the short dashboard query's throughput
// as Eon clusters scale out at a fixed shard count, against a 9-node
// Enterprise cluster.
func Fig11a(opts Fig11aOptions) ([]Fig11aSeries, error) {
	if opts.Scale <= 0 {
		opts.Scale = 0.02
	}
	if opts.Window <= 0 {
		opts.Window = time.Second
	}
	if len(opts.Threads) == 0 {
		opts.Threads = []int{10, 30, 50, 70}
	}
	if len(opts.EonNodeCounts) == 0 {
		opts.EonNodeCounts = []int{3, 6, 9}
	}
	if opts.EnterpriseNodes <= 0 {
		opts.EnterpriseNodes = 9
	}

	var series []Fig11aSeries
	for _, nodes := range opts.EonNodeCounts {
		// Replication factor = node count so added nodes can serve every
		// shard (elastic throughput scaling duplicates responsibility,
		// §4.2).
		db, _, err := newEonDB(nodes, 3, nodes, throughputCosts())
		if err != nil {
			return nil, err
		}
		if err := loadTPCH(db, opts.Scale); err != nil {
			return nil, err
		}
		s := fmt.Sprintf("Eon %d node 3 shard", nodes)
		ser, err := throughputSeries(db, s, opts.Threads, opts.Window)
		if err != nil {
			return nil, err
		}
		series = append(series, ser)
	}

	entDB, err := newEnterpriseDB(opts.EnterpriseNodes, throughputCosts())
	if err != nil {
		return nil, err
	}
	if err := loadTPCH(entDB, opts.Scale); err != nil {
		return nil, err
	}
	ser, err := throughputSeries(entDB, fmt.Sprintf("Enterprise %d node", opts.EnterpriseNodes), opts.Threads, opts.Window)
	if err != nil {
		return nil, err
	}
	series = append(series, ser)
	return series, nil
}

func throughputSeries(db *core.DB, label string, threads []int, window time.Duration) (Fig11aSeries, error) {
	ser := Fig11aSeries{Label: label, Threads: threads}
	// Warm caches once.
	if _, err := db.NewSession().Query(workload.DashboardQuery); err != nil {
		return ser, err
	}
	for _, t := range threads {
		qpm, err := runThroughput(t, window, func(worker int) error {
			_, err := db.NewSession().Query(workload.DashboardQuery)
			return err
		})
		if err != nil {
			return ser, err
		}
		ser.QPM = append(ser.QPM, qpm)
	}
	return ser, nil
}

// Fig11bSeries is one cluster size's COPY-throughput curve (loads per
// minute at each concurrency level).
type Fig11bSeries struct {
	Label   string
	Threads []int
	LPM     []float64
}

// Fig11bOptions tunes the concurrent small-load experiment.
type Fig11bOptions struct {
	Window        time.Duration
	Threads       []int // paper: 10, 30, 50
	EonNodeCounts []int // paper: 3, 6, 9 at 3 shards
	RowsPerLoad   int
}

// Fig11b reproduces Figure 11b: throughput of concurrent small COPY
// statements (the IoT pattern) as the Eon cluster scales out at 3
// shards.
func Fig11b(opts Fig11bOptions) ([]Fig11bSeries, error) {
	if opts.Window <= 0 {
		opts.Window = time.Second
	}
	if len(opts.Threads) == 0 {
		opts.Threads = []int{10, 30, 50}
	}
	if len(opts.EonNodeCounts) == 0 {
		opts.EonNodeCounts = []int{3, 6, 9}
	}
	iot := workload.DefaultIoT()
	// Keep the real (host) work per load small; the simulated LoadCost
	// models the paper's 50 MB ingest while slots are held.
	iot.RowsPerLoad = 200
	if opts.RowsPerLoad > 0 {
		iot.RowsPerLoad = opts.RowsPerLoad
	}

	var series []Fig11bSeries
	for _, nodes := range opts.EonNodeCounts {
		db, _, err := newEonDB(nodes, 3, nodes, throughputCosts())
		if err != nil {
			return nil, err
		}
		s := db.NewSession()
		for _, stmt := range iot.DDL() {
			if _, err := s.Execute(stmt); err != nil {
				return nil, err
			}
		}
		ser := Fig11bSeries{Label: fmt.Sprintf("Eon %d node 3 shard", nodes), Threads: opts.Threads}
		var seq atomic.Int64
		for _, t := range opts.Threads {
			lpm, err := runThroughput(t, opts.Window, func(worker int) error {
				return db.LoadRows("readings", iot.Batch(seq.Add(1)))
			})
			if err != nil {
				return nil, err
			}
			ser.LPM = append(ser.LPM, lpm)
		}
		series = append(series, ser)
	}
	return series, nil
}
