package exec

import (
	"context"
	"fmt"
	"testing"

	"eon/internal/expr"
	"eon/internal/types"
	"eon/internal/udfs"
)

func testSpill(t *testing.T) *FSSpill {
	t.Helper()
	return NewFSSpill(context.Background(), udfs.NewMemFS(), "spill/q1")
}

// spillInput builds n rows of (id INT, grp VARCHAR, val FLOAT) split into
// batches of batchRows, with some NULL vals.
func spillInput(n, batchRows, groups int) (types.Schema, []*types.Batch) {
	schema := types.Schema{
		{Name: "id", Type: types.Int64},
		{Name: "grp", Type: types.Varchar},
		{Name: "val", Type: types.Float64},
	}
	var batches []*types.Batch
	b := types.NewBatch(schema, batchRows)
	for i := 0; i < n; i++ {
		val := types.NewFloat(float64(i%97) * 1.5)
		if i%13 == 0 {
			val = types.NullDatum(types.Float64)
		}
		b.AppendRow(types.Row{
			types.NewInt(int64(i * 7 % n)),
			types.NewString(fmt.Sprintf("g%03d", i%groups)),
			val,
		})
		if b.NumRows() == batchRows {
			batches = append(batches, b)
			b = types.NewBatch(schema, batchRows)
		}
	}
	if b.NumRows() > 0 {
		batches = append(batches, b)
	}
	return schema, batches
}

func TestMemGovernorAccounting(t *testing.T) {
	var gaugeVal int64
	g := NewMemGovernor(1000, func(d int64) { gaugeVal += d })
	if g.WouldExceed(1000) {
		t.Fatal("1000 within a 1000 budget")
	}
	if !g.WouldExceed(1001) {
		t.Fatal("1001 exceeds a 1000 budget")
	}
	g.Charge(600)
	if !g.WouldExceed(500) {
		t.Fatal("600+500 exceeds 1000")
	}
	g.Charge(300)
	g.Release(400)
	if got := g.Used(); got != 500 {
		t.Fatalf("used = %d, want 500", got)
	}
	if got := g.Peak(); got != 900 {
		t.Fatalf("peak = %d, want 900", got)
	}
	if gaugeVal != 500 {
		t.Fatalf("gauge = %d, want 500", gaugeVal)
	}
	g.NoteSpill(123)
	if g.Spills() != 1 || g.SpillBytes() != 123 {
		t.Fatalf("spill stats = %d/%d", g.Spills(), g.SpillBytes())
	}
	g.Close()
	if g.Used() != 0 || gaugeVal != 0 {
		t.Fatalf("after Close: used=%d gauge=%d", g.Used(), gaugeVal)
	}

	// Nil receiver: every method is a no-op.
	var nilG *MemGovernor
	nilG.Charge(10)
	nilG.Release(10)
	nilG.NoteSpill(1)
	nilG.Close()
	if nilG.Limited() || nilG.WouldExceed(1) || nilG.Used() != 0 || nilG.Peak() != 0 {
		t.Fatal("nil governor must be unlimited and zero")
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	schema := types.Schema{
		{Name: "i", Type: types.Int64},
		{Name: "f", Type: types.Float64},
		{Name: "s", Type: types.Varchar},
		{Name: "b", Type: types.Bool},
		{Name: "d", Type: types.Date},
	}
	b := types.NewBatch(schema, 4)
	b.AppendRow(types.Row{types.NewInt(-5), types.NewFloat(2.5), types.NewString("hello"), types.NewBool(true), types.NewDate(19000)})
	b.AppendRow(types.Row{types.NullDatum(types.Int64), types.NullDatum(types.Float64), types.NullDatum(types.Varchar), types.NullDatum(types.Bool), types.NullDatum(types.Date)})
	b.AppendRow(types.Row{types.NewInt(1 << 40), types.NewFloat(-0.0), types.NewString(""), types.NewBool(false), types.NewDate(0)})

	got, err := decodeBatch(schema, encodeBatch(nil, b))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != b.NumRows() {
		t.Fatalf("rows = %d, want %d", got.NumRows(), b.NumRows())
	}
	for i := 0; i < b.NumRows(); i++ {
		want, have := b.Row(i), got.Row(i)
		for c := range want {
			if want[c].Null != have[c].Null || (!want[c].Null && !want[c].Equal(have[c])) {
				t.Fatalf("row %d col %d: got %v, want %v", i, c, have[c], want[c])
			}
		}
	}
}

func TestSortSpillMatchesInMemory(t *testing.T) {
	schema, batches := spillInput(5000, 250, 40)
	keys := []SortSpec{{Col: 1}, {Col: 2, Desc: true}, {Col: 0}}

	ref, err := Collect(NewSort(NewSource(schema, batches...), keys))
	if err != nil {
		t.Fatal(err)
	}

	g := NewMemGovernor(64<<10, nil)
	s := NewSort(NewSource(schema, batches...), keys)
	s.Mem, s.Spill = g, testSpill(t)
	got, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}

	if g.Spills() == 0 {
		t.Fatal("budget 64KiB over ~5000 rows did not spill")
	}
	if g.Peak() > g.Budget() {
		t.Fatalf("peak %d exceeds budget %d", g.Peak(), g.Budget())
	}
	if g.Used() != 0 {
		t.Fatalf("governor still holds %d bytes after drain", g.Used())
	}
	if got.NumRows() != ref.NumRows() {
		t.Fatalf("rows = %d, want %d", got.NumRows(), ref.NumRows())
	}
	for i := 0; i < ref.NumRows(); i++ {
		w, h := ref.Row(i), got.Row(i)
		for c := range w {
			if w[c].Null != h[c].Null || (!w[c].Null && !w[c].Equal(h[c])) {
				t.Fatalf("row %d col %d: got %v, want %v (external sort diverged)", i, c, h[c], w[c])
			}
		}
	}
}

func TestSortNoBudgetUnchanged(t *testing.T) {
	schema, batches := spillInput(500, 100, 10)
	keys := []SortSpec{{Col: 0}}
	ref, err := NewSort(NewSource(schema, batches...), keys).Next()
	if err != nil {
		t.Fatal(err)
	}
	s := NewSort(NewSource(schema, batches...), keys)
	s.Mem = NewMemGovernor(0, nil) // track-only governor, no spill store
	got, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != ref.NumRows() {
		t.Fatalf("rows differ: %d vs %d", got.NumRows(), ref.NumRows())
	}
	if b, err := s.Next(); err != nil || b != nil {
		t.Fatalf("second Next = (%v, %v), want (nil, nil)", b, err)
	}
}

// aggOver runs a grouped aggregation over the input with the given
// governor/spill and returns rows keyed by the group column.
func aggOver(t *testing.T, schema types.Schema, batches []*types.Batch, g *MemGovernor, sp SpillStore) map[string]types.Row {
	t.Helper()
	in := NewSource(schema, batches...)
	keyEx, valEx, idEx := expr.Col("grp"), expr.Col("val"), expr.Col("id")
	for _, e := range []expr.Expr{keyEx, valEx, idEx} {
		if err := expr.Bind(e, schema); err != nil {
			t.Fatal(err)
		}
	}
	aggs := []AggDef{
		{Kind: AggCountStar, Name: "n"},
		{Kind: AggSum, Arg: idEx, Name: "sum_id"},
		{Kind: AggAvg, Arg: valEx, Name: "avg_val"},
		{Kind: AggMin, Arg: valEx, Name: "min_val"},
		{Kind: AggMax, Arg: idEx, Name: "max_id"},
		{Kind: AggCount, Arg: valEx, Name: "n_val"},
	}
	ha := NewHashAggregate(in, []expr.Expr{keyEx}, []string{"grp"}, aggs, false)
	ha.Mem, ha.Spill = g, sp
	out, err := Collect(ha)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]types.Row{}
	for i := 0; i < out.NumRows(); i++ {
		r := out.Row(i)
		rows[r[0].S] = r
	}
	return rows
}

func TestHashAggSpillMatchesInMemory(t *testing.T) {
	schema, batches := spillInput(8000, 200, 500)

	ref := aggOver(t, schema, batches, nil, nil)

	g := NewMemGovernor(16<<10, nil)
	got := aggOver(t, schema, batches, g, testSpill(t))

	if g.Spills() == 0 {
		t.Fatal("500 groups under a 16KiB budget did not spill")
	}
	if g.Peak() > g.Budget() {
		t.Fatalf("peak %d exceeds budget %d", g.Peak(), g.Budget())
	}
	if g.Used() != 0 {
		t.Fatalf("governor still holds %d bytes after drain", g.Used())
	}
	if len(got) != len(ref) {
		t.Fatalf("group count = %d, want %d", len(got), len(ref))
	}
	for k, w := range ref {
		h, ok := got[k]
		if !ok {
			t.Fatalf("group %q missing from spilled result", k)
		}
		for c := range w {
			if w[c].Null != h[c].Null || (!w[c].Null && !w[c].Equal(h[c])) {
				t.Fatalf("group %q col %d: got %v, want %v (spill merge diverged)", k, c, h[c], w[c])
			}
		}
	}
}

func TestHashAggPartialAvgSpill(t *testing.T) {
	schema, batches := spillInput(4000, 125, 300)
	build := func(g *MemGovernor, sp SpillStore) map[string]types.Row {
		in := NewSource(schema, batches...)
		keyEx, valEx := expr.Col("grp"), expr.Col("val")
		for _, e := range []expr.Expr{keyEx, valEx} {
			if err := expr.Bind(e, schema); err != nil {
				t.Fatal(err)
			}
		}
		ha := NewHashAggregate(in, []expr.Expr{keyEx}, []string{"grp"},
			[]AggDef{{Kind: AggAvg, Arg: valEx, Name: "a"}}, true)
		ha.Mem, ha.Spill = g, sp
		out, err := Collect(ha)
		if err != nil {
			t.Fatal(err)
		}
		rows := map[string]types.Row{}
		for i := 0; i < out.NumRows(); i++ {
			r := out.Row(i)
			rows[r[0].S] = r
		}
		return rows
	}
	ref := build(nil, nil)
	g := NewMemGovernor(8<<10, nil)
	got := build(g, testSpill(t))
	if g.Spills() == 0 {
		t.Fatal("expected spills")
	}
	if len(got) != len(ref) {
		t.Fatalf("groups %d != %d", len(got), len(ref))
	}
	for k, w := range ref {
		h := got[k]
		// Partial AVG emits (sum, count).
		if len(h) != 3 || w[1].F != h[1].F || w[2].I != h[2].I {
			t.Fatalf("group %q: got %v, want %v", k, h, w)
		}
	}
}

func TestHashJoinChargesAndReleases(t *testing.T) {
	schema, batches := spillInput(1000, 100, 50)
	g := NewMemGovernor(1<<30, nil)
	j := NewHashJoin(
		NewSource(schema, batches...),
		NewSource(schema, batches...),
		[]int{0}, []int{0},
	)
	j.Mem = g
	var rows int
	for {
		b, err := j.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		rows += b.NumRows()
		if g.Used() == 0 {
			t.Fatal("build side not charged while probing")
		}
	}
	if rows == 0 {
		t.Fatal("join produced no rows")
	}
	if g.Used() != 0 {
		t.Fatalf("governor still holds %d bytes after probe drained", g.Used())
	}
	if g.Peak() == 0 {
		t.Fatal("peak never recorded")
	}
}

func TestFSSpillCleanup(t *testing.T) {
	fs := udfs.NewMemFS()
	ctx := context.Background()
	sp := NewFSSpill(ctx, fs, "spill/q9")
	if _, err := sp.Put("sortrun", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Put("aggrun", []byte("defg")); err != nil {
		t.Fatal(err)
	}
	infos, err := fs.List(ctx, "spill/q9/")
	if err != nil || len(infos) != 2 {
		t.Fatalf("list = %v, %v", infos, err)
	}
	if err := sp.Cleanup(ctx); err != nil {
		t.Fatal(err)
	}
	infos, err = fs.List(ctx, "spill/q9/")
	if err != nil || len(infos) != 0 {
		t.Fatalf("after cleanup: %v, %v", infos, err)
	}
}
