package expr

import (
	"testing"

	"eon/internal/types"
)

var testSchema = types.Schema{
	{Name: "id", Type: types.Int64},
	{Name: "price", Type: types.Float64},
	{Name: "name", Type: types.Varchar},
	{Name: "active", Type: types.Bool},
	{Name: "sold", Type: types.Date},
}

var testRow = types.Row{
	types.NewInt(7),
	types.NewFloat(9.5),
	types.NewString("widget"),
	types.NewBool(true),
	types.NewDate(17692), // 2018-06-10
}

func mustEval(t *testing.T, e Expr) types.Datum {
	t.Helper()
	if err := Bind(e, testSchema); err != nil {
		t.Fatalf("bind: %v", err)
	}
	d, err := EvalRow(e, testRow)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return d
}

func TestBindUnknownColumn(t *testing.T) {
	if err := Bind(Col("nope"), testSchema); err == nil {
		t.Error("unknown column should fail to bind")
	}
}

func TestColumnAndLiteral(t *testing.T) {
	if d := mustEval(t, Col("id")); d.I != 7 {
		t.Errorf("id = %v", d)
	}
	if d := mustEval(t, IntLit(3)); d.I != 3 {
		t.Errorf("lit = %v", d)
	}
}

func TestArithmetic(t *testing.T) {
	if d := mustEval(t, Bin(OpAdd, Col("id"), IntLit(5))); d.I != 12 {
		t.Errorf("7+5 = %v", d)
	}
	if d := mustEval(t, Bin(OpMul, Col("price"), FloatLit(2))); d.F != 19 {
		t.Errorf("9.5*2 = %v", d)
	}
	if d := mustEval(t, Bin(OpMod, Col("id"), IntLit(4))); d.I != 3 {
		t.Errorf("7%%4 = %v", d)
	}
	// Mixed int/float promotes to float.
	d := mustEval(t, Bin(OpAdd, Col("id"), FloatLit(0.5)))
	if d.K != types.Float64 || d.F != 7.5 {
		t.Errorf("7+0.5 = %v (%v)", d, d.K)
	}
}

func TestDivisionByZeroIsNull(t *testing.T) {
	if d := mustEval(t, Bin(OpDiv, Col("id"), IntLit(0))); !d.Null {
		t.Errorf("7/0 = %v, want NULL", d)
	}
	if d := mustEval(t, Bin(OpDiv, Col("price"), FloatLit(0))); !d.Null {
		t.Errorf("9.5/0.0 = %v, want NULL", d)
	}
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		op   Op
		want bool
	}{
		{OpEq, false}, {OpNe, true}, {OpLt, true}, {OpLe, true}, {OpGt, false}, {OpGe, false},
	}
	for _, c := range cases {
		d := mustEval(t, Bin(c.op, Col("id"), IntLit(10)))
		if d.Null || d.B != c.want {
			t.Errorf("7 %v 10 = %v, want %v", c.op, d, c.want)
		}
	}
	// Cross-type numeric comparison.
	if d := mustEval(t, Bin(OpGt, Col("price"), IntLit(9))); !d.B {
		t.Error("9.5 > 9 should be true")
	}
}

func TestThreeValuedLogic(t *testing.T) {
	null := Lit(types.NullDatum(types.Bool))
	tru := Lit(types.NewBool(true))
	fls := Lit(types.NewBool(false))

	// NULL AND FALSE = FALSE; NULL AND TRUE = NULL.
	if d := mustEval(t, Bin(OpAnd, null, fls)); d.Null || d.B {
		t.Errorf("NULL AND FALSE = %v", d)
	}
	if d := mustEval(t, Bin(OpAnd, null, tru)); !d.Null {
		t.Errorf("NULL AND TRUE = %v", d)
	}
	// NULL OR TRUE = TRUE; NULL OR FALSE = NULL.
	if d := mustEval(t, Bin(OpOr, null, tru)); d.Null || !d.B {
		t.Errorf("NULL OR TRUE = %v", d)
	}
	if d := mustEval(t, Bin(OpOr, null, fls)); !d.Null {
		t.Errorf("NULL OR FALSE = %v", d)
	}
	// NOT NULL = NULL.
	if d := mustEval(t, &Unary{Op: OpNot, E: null}); !d.Null {
		t.Errorf("NOT NULL = %v", d)
	}
	// Comparison with NULL is NULL.
	if d := mustEval(t, Bin(OpEq, Col("id"), Lit(types.NullDatum(types.Int64)))); !d.Null {
		t.Errorf("id = NULL should be NULL, got %v", d)
	}
}

func TestIsNull(t *testing.T) {
	if d := mustEval(t, &IsNull{E: Col("id")}); d.B {
		t.Error("id IS NULL should be false")
	}
	if d := mustEval(t, &IsNull{E: Col("id"), Negate: true}); !d.B {
		t.Error("id IS NOT NULL should be true")
	}
	if d := mustEval(t, &IsNull{E: Lit(types.NullDatum(types.Int64))}); !d.B {
		t.Error("NULL IS NULL should be true")
	}
}

func TestIn(t *testing.T) {
	in := &In{E: Col("id"), List: []Expr{IntLit(5), IntLit(7)}}
	if d := mustEval(t, in); !d.B {
		t.Error("7 IN (5,7) should be true")
	}
	notIn := &In{E: Col("id"), List: []Expr{IntLit(1)}, Negate: true}
	if d := mustEval(t, notIn); !d.B {
		t.Error("7 NOT IN (1) should be true")
	}
	// x IN (..., NULL) with no match is NULL.
	withNull := &In{E: Col("id"), List: []Expr{IntLit(1), Lit(types.NullDatum(types.Int64))}}
	if d := mustEval(t, withNull); !d.Null {
		t.Errorf("7 IN (1, NULL) = %v, want NULL", d)
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		pattern string
		want    bool
	}{
		{"widget", true}, {"wid%", true}, {"%get", true}, {"%dge%", true},
		{"w_dget", true}, {"gadget", false}, {"%x%", false}, {"", false}, {"%", true},
	}
	for _, c := range cases {
		d := mustEval(t, &Like{E: Col("name"), Pattern: c.pattern})
		if d.B != c.want {
			t.Errorf("'widget' LIKE %q = %v, want %v", c.pattern, d.B, c.want)
		}
	}
	neg := mustEval(t, &Like{E: Col("name"), Pattern: "z%", Negate: true})
	if !neg.B {
		t.Error("NOT LIKE should negate")
	}
}

func TestCase(t *testing.T) {
	c := &Case{
		Whens: []When{
			{Cond: Bin(OpGt, Col("id"), IntLit(10)), Then: StrLit("big")},
			{Cond: Bin(OpGt, Col("id"), IntLit(5)), Then: StrLit("mid")},
		},
		Else: StrLit("small"),
	}
	if d := mustEval(t, c); d.S != "mid" {
		t.Errorf("case = %v", d)
	}
	noElse := &Case{Whens: []When{{Cond: Lit(types.NewBool(false)), Then: IntLit(1)}}}
	if d := mustEval(t, noElse); !d.Null {
		t.Errorf("case with no match and no else = %v, want NULL", d)
	}
}

func TestFunctions(t *testing.T) {
	if d := mustEval(t, &Func{Name: "ABS", Args: []Expr{Bin(OpSub, IntLit(0), Col("id"))}}); d.I != 7 {
		t.Errorf("abs(-7) = %v", d)
	}
	if d := mustEval(t, &Func{Name: "LENGTH", Args: []Expr{Col("name")}}); d.I != 6 {
		t.Errorf("length = %v", d)
	}
	if d := mustEval(t, &Func{Name: "UPPER", Args: []Expr{Col("name")}}); d.S != "WIDGET" {
		t.Errorf("upper = %v", d)
	}
	if d := mustEval(t, &Func{Name: "SUBSTR", Args: []Expr{Col("name"), IntLit(2), IntLit(3)}}); d.S != "idg" {
		t.Errorf("substr = %v", d)
	}
	if d := mustEval(t, &Func{Name: "COALESCE", Args: []Expr{Lit(types.NullDatum(types.Int64)), IntLit(4)}}); d.I != 4 {
		t.Errorf("coalesce = %v", d)
	}
	h := mustEval(t, &Func{Name: "HASH", Args: []Expr{Col("id"), Col("name")}})
	if h.Null {
		t.Error("hash should not be null")
	}
}

func TestExtract(t *testing.T) {
	// sold = 2018-06-10.
	y := mustEval(t, &Func{Name: "EXTRACT", Args: []Expr{StrLit("year"), Col("sold")}})
	m := mustEval(t, &Func{Name: "EXTRACT", Args: []Expr{StrLit("month"), Col("sold")}})
	d := mustEval(t, &Func{Name: "EXTRACT", Args: []Expr{StrLit("day"), Col("sold")}})
	if y.I != 2018 || m.I != 6 || d.I != 10 {
		t.Errorf("extract = %v-%v-%v", y.I, m.I, d.I)
	}
	if v := mustEval(t, &Func{Name: "YEAR", Args: []Expr{Col("sold")}}); v.I != 2018 {
		t.Errorf("YEAR() = %v", v)
	}
}

func TestStrictFunctionsNullPropagate(t *testing.T) {
	d := mustEval(t, &Func{Name: "UPPER", Args: []Expr{Lit(types.NullDatum(types.Varchar))}})
	if !d.Null {
		t.Error("UPPER(NULL) should be NULL")
	}
}

func TestAndHelper(t *testing.T) {
	if And() != nil {
		t.Error("And() of nothing is nil")
	}
	e := And(nil, Bin(OpGt, Col("id"), IntLit(1)), nil, Bin(OpLt, Col("id"), IntLit(10)))
	d := mustEval(t, e)
	if !d.B {
		t.Errorf("1 < 7 < 10 = %v", d)
	}
}

func TestColumnsAndNames(t *testing.T) {
	e := And(Bin(OpGt, Col("id"), IntLit(1)), Bin(OpEq, Col("name"), StrLit("x")))
	if err := Bind(e, testSchema); err != nil {
		t.Fatal(err)
	}
	cols := Columns(e)
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 2 {
		t.Errorf("columns = %v", cols)
	}
	names := ColumnNames(e)
	if len(names) != 2 || names[0] != "id" || names[1] != "name" {
		t.Errorf("names = %v", names)
	}
}

func TestFilterBatch(t *testing.T) {
	b := types.BatchFromRows(testSchema[:1], []types.Row{
		{types.NewInt(1)}, {types.NewInt(5)}, {types.NullDatum(types.Int64)}, {types.NewInt(9)},
	})
	e := Bin(OpGt, Col("id"), IntLit(2))
	if err := Bind(e, testSchema[:1]); err != nil {
		t.Fatal(err)
	}
	sel, err := FilterBatch(e, b)
	if err != nil {
		t.Fatal(err)
	}
	// NULL > 2 is NULL, excluded.
	if len(sel) != 2 || sel[0] != 1 || sel[1] != 3 {
		t.Errorf("sel = %v", sel)
	}
}

func TestEvalBatch(t *testing.T) {
	b := types.BatchFromRows(testSchema[:1], []types.Row{{types.NewInt(2)}, {types.NewInt(3)}})
	e := Bin(OpMul, Col("id"), IntLit(10))
	if err := Bind(e, testSchema[:1]); err != nil {
		t.Fatal(err)
	}
	v, err := EvalBatch(e, b)
	if err != nil || v.Ints[0] != 20 || v.Ints[1] != 30 {
		t.Errorf("evalbatch = %v, %v", v.Ints, err)
	}
}

// --- pruning analysis ---

func statsFor(m map[int]ColumnStats) StatsFunc {
	return func(col int) (ColumnStats, bool) {
		st, ok := m[col]
		return st, ok
	}
}

func bindPred(t *testing.T, e Expr) Expr {
	t.Helper()
	if err := Bind(e, testSchema); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCouldMatchComparison(t *testing.T) {
	stats := statsFor(map[int]ColumnStats{
		0: {Min: types.NewInt(10), Max: types.NewInt(20)},
	})
	cases := []struct {
		e    Expr
		want bool
	}{
		{Bin(OpEq, Col("id"), IntLit(15)), true},
		{Bin(OpEq, Col("id"), IntLit(5)), false},
		{Bin(OpEq, Col("id"), IntLit(25)), false},
		{Bin(OpLt, Col("id"), IntLit(10)), false},
		{Bin(OpLt, Col("id"), IntLit(11)), true},
		{Bin(OpLe, Col("id"), IntLit(10)), true},
		{Bin(OpGt, Col("id"), IntLit(20)), false},
		{Bin(OpGe, Col("id"), IntLit(20)), true},
		// Literal on the left flips the operator.
		{Bin(OpGt, IntLit(25), Col("id")), true},
		{Bin(OpLt, IntLit(25), Col("id")), false},
	}
	for _, c := range cases {
		e := bindPred(t, c.e)
		if got := CouldMatch(e, stats); got != c.want {
			t.Errorf("CouldMatch(%v) = %v, want %v", e, got, c.want)
		}
	}
}

func TestCouldMatchAndOr(t *testing.T) {
	stats := statsFor(map[int]ColumnStats{
		0: {Min: types.NewInt(10), Max: types.NewInt(20)},
	})
	impossible := Bin(OpGt, Col("id"), IntLit(100))
	possible := Bin(OpGt, Col("id"), IntLit(15))
	if CouldMatch(bindPred(t, Bin(OpAnd, impossible, possible)), stats) {
		t.Error("AND with impossible conjunct should prune")
	}
	if !CouldMatch(bindPred(t, Bin(OpOr, impossible, possible)), stats) {
		t.Error("OR with possible branch should not prune")
	}
	imp2 := Bin(OpLt, Col("id"), IntLit(0))
	if CouldMatch(bindPred(t, Bin(OpOr, impossible, imp2)), stats) {
		t.Error("OR of two impossible branches should prune")
	}
}

func TestCouldMatchUnknownColumnConservative(t *testing.T) {
	stats := statsFor(map[int]ColumnStats{})
	e := bindPred(t, Bin(OpEq, Col("id"), IntLit(5)))
	if !CouldMatch(e, stats) {
		t.Error("unknown stats must be conservative (true)")
	}
}

func TestCouldMatchNullSemantics(t *testing.T) {
	stats := statsFor(map[int]ColumnStats{
		0: {AllNull: true},
	})
	if CouldMatch(bindPred(t, Bin(OpEq, Col("id"), IntLit(5))), stats) {
		t.Error("all-NULL column can never satisfy a comparison")
	}
	if !CouldMatch(bindPred(t, &IsNull{E: Col("id")}), stats) {
		t.Error("IS NULL on all-null column should match")
	}
	if CouldMatch(bindPred(t, &IsNull{E: Col("id"), Negate: true}), stats) {
		t.Error("IS NOT NULL on all-null column should prune")
	}
}

func TestCouldMatchIn(t *testing.T) {
	stats := statsFor(map[int]ColumnStats{
		0: {Min: types.NewInt(10), Max: types.NewInt(20)},
	})
	if CouldMatch(bindPred(t, &In{E: Col("id"), List: []Expr{IntLit(1), IntLit(2)}}), stats) {
		t.Error("IN with all members out of range should prune")
	}
	if !CouldMatch(bindPred(t, &In{E: Col("id"), List: []Expr{IntLit(1), IntLit(15)}}), stats) {
		t.Error("IN with a member in range should not prune")
	}
}

func TestCouldMatchNonAnalyzableIsConservative(t *testing.T) {
	stats := statsFor(map[int]ColumnStats{
		0: {Min: types.NewInt(10), Max: types.NewInt(20)},
	})
	// Column-to-column comparison: not analyzable.
	e := bindPred(t, Bin(OpEq, Col("id"), Col("id")))
	if !CouldMatch(e, stats) {
		t.Error("col=col should be conservative")
	}
}

func TestExprString(t *testing.T) {
	e := Bin(OpAnd, Bin(OpGt, Col("id"), IntLit(1)), &Like{E: Col("name"), Pattern: "w%"})
	s := e.String()
	if s == "" {
		t.Error("string rendering empty")
	}
}
