package flowassign

import (
	"testing"
	"testing/quick"
)

// allServe lets every node serve every shard.
func allServe(string, int) bool { return true }

func shardRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestAssignCoversAllShards(t *testing.T) {
	got, err := Assign(Input{
		Shards:   shardRange(4),
		Nodes:    []string{"n1", "n2", "n3", "n4"},
		CanServe: allServe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("assigned %d shards", len(got))
	}
}

func TestAssignBalanced(t *testing.T) {
	// 8 shards over 4 nodes, all capable: every node should get exactly 2.
	got, err := Assign(Input{
		Shards:   shardRange(8),
		Nodes:    []string{"a", "b", "c", "d"},
		CanServe: allServe,
	})
	if err != nil {
		t.Fatal(err)
	}
	load := map[string]int{}
	for _, n := range got {
		load[n]++
	}
	for n, l := range load {
		if l != 2 {
			t.Errorf("node %s load %d, want 2", n, l)
		}
	}
}

func TestAssignMoreNodesThanShards(t *testing.T) {
	// 3 shards, 9 nodes: each shard on a distinct node.
	got, err := Assign(Input{
		Shards:   shardRange(3),
		Nodes:    []string{"a", "b", "c", "d", "e", "f", "g", "h", "i"},
		CanServe: allServe,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, n := range got {
		if seen[n] {
			t.Errorf("node %s assigned twice despite spare nodes", n)
		}
		seen[n] = true
	}
}

func TestAssignRespectsSubscriptions(t *testing.T) {
	canServe := func(node string, shard int) bool {
		switch node {
		case "n1":
			return shard == 0 || shard == 1
		case "n2":
			return shard == 2 || shard == 3
		}
		return false
	}
	got, err := Assign(Input{
		Shards:   shardRange(4),
		Nodes:    []string{"n1", "n2"},
		CanServe: canServe,
	})
	if err != nil {
		t.Fatal(err)
	}
	for shard, node := range got {
		if !canServe(node, shard) {
			t.Errorf("shard %d assigned to non-subscriber %s", shard, node)
		}
	}
}

// The paper's asymmetric example: one node serves every shard, others
// serve few. Successive rounds must still produce a complete assignment.
func TestAssignAsymmetricSuccessiveRounds(t *testing.T) {
	canServe := func(node string, shard int) bool {
		if node == "big" {
			return true
		}
		return false
	}
	got, err := Assign(Input{
		Shards:   shardRange(4),
		Nodes:    []string{"big", "idle1", "idle2"},
		CanServe: canServe,
	})
	if err != nil {
		t.Fatal(err)
	}
	for shard, node := range got {
		if node != "big" {
			t.Errorf("shard %d on %s, only big subscribes", shard, node)
		}
	}
	if len(got) != 4 {
		t.Errorf("incomplete: %v", got)
	}
}

func TestAssignMinimalSkewWhenPartiallyAsymmetric(t *testing.T) {
	// "full" serves everything, "half" serves shards 0-3 of 8.
	canServe := func(node string, shard int) bool {
		if node == "full" {
			return true
		}
		return shard < 4
	}
	got, err := Assign(Input{
		Shards:   shardRange(8),
		Nodes:    []string{"full", "half"},
		CanServe: canServe,
	})
	if err != nil {
		t.Fatal(err)
	}
	load := map[string]int{}
	for _, n := range got {
		load[n]++
	}
	// Perfect split is 4/4; allow at most 5/3 skew.
	if load["full"] > 5 {
		t.Errorf("skewed assignment: %v", load)
	}
}

func TestAssignUncoverableShard(t *testing.T) {
	_, err := Assign(Input{
		Shards:   shardRange(2),
		Nodes:    []string{"n1"},
		CanServe: func(node string, shard int) bool { return shard == 0 },
	})
	if err == nil {
		t.Fatal("shard 1 has no subscriber; Assign must fail")
	}
}

func TestAssignNoNodes(t *testing.T) {
	if _, err := Assign(Input{Shards: shardRange(1), Nodes: nil, CanServe: allServe}); err == nil {
		t.Error("no nodes should fail")
	}
}

func TestAssignEmptyShards(t *testing.T) {
	got, err := Assign(Input{Shards: nil, Nodes: []string{"a"}, CanServe: allServe})
	if err != nil || len(got) != 0 {
		t.Error("empty shard list should trivially succeed")
	}
}

func TestSeedVariesAssignment(t *testing.T) {
	// 3 shards, 6 nodes: many equivalent assignments exist. Different
	// seeds should not always pick the same one (refinement 2).
	distinct := map[string]bool{}
	for seed := int64(0); seed < 16; seed++ {
		got, err := Assign(Input{
			Shards:   shardRange(3),
			Nodes:    []string{"a", "b", "c", "d", "e", "f"},
			CanServe: allServe,
			Seed:     seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		key := got[0] + "|" + got[1] + "|" + got[2]
		distinct[key] = true
	}
	if len(distinct) < 2 {
		t.Error("seed variation should produce different assignments")
	}
}

func TestAssignDeterministicForSeed(t *testing.T) {
	in := Input{
		Shards:   shardRange(4),
		Nodes:    []string{"a", "b", "c"},
		CanServe: allServe,
		Seed:     7,
	}
	a, err1 := Assign(in)
	b, err2 := Assign(in)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for k := range a {
		if a[k] != b[k] {
			t.Errorf("same seed should be deterministic: %v vs %v", a, b)
		}
	}
}

func TestPriorityTiersPreferred(t *testing.T) {
	// Subcluster nodes (tier 0) can cover all shards; tier 1 must be
	// unused (§4.3 workload isolation).
	got, err := Assign(Input{
		Shards:   shardRange(3),
		Nodes:    []string{"sub1", "sub2", "sub3", "other1", "other2"},
		CanServe: allServe,
		Priority: map[string]int{"sub1": 0, "sub2": 0, "sub3": 0, "other1": 1, "other2": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for shard, node := range got {
		if node == "other1" || node == "other2" {
			t.Errorf("shard %d escaped to %s despite tier-0 coverage", shard, node)
		}
	}
}

func TestPriorityEscapesWhenInsufficient(t *testing.T) {
	// Tier 0 cannot serve shard 2; the workload must escape for it.
	canServe := func(node string, shard int) bool {
		if node == "sub1" {
			return shard < 2
		}
		return true // "outside" serves everything
	}
	got, err := Assign(Input{
		Shards:   shardRange(3),
		Nodes:    []string{"sub1", "outside"},
		CanServe: canServe,
		Priority: map[string]int{"sub1": 0, "outside": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[2] != "outside" {
		t.Errorf("shard 2 should escape to outside, got %v", got)
	}
	// Shards 0 and 1 should stay on the priority node.
	if got[0] != "sub1" || got[1] != "sub1" {
		t.Errorf("covered shards should stay in tier 0: %v", got)
	}
}

// Property: for any subscription bitmap where every shard has at least one
// subscriber, Assign covers every shard with a legal node.
func TestQuickAssignValid(t *testing.T) {
	f := func(bitmap [6][4]bool, seed int64) bool {
		nodes := []string{"n0", "n1", "n2", "n3"}
		// Ensure coverage: node 0 serves everything.
		canServe := func(node string, shard int) bool {
			ni := int(node[1] - '0')
			return ni == 0 || bitmap[shard][ni]
		}
		got, err := Assign(Input{
			Shards:   shardRange(6),
			Nodes:    nodes,
			CanServe: canServe,
			Seed:     seed,
		})
		if err != nil || len(got) != 6 {
			return false
		}
		for shard, node := range got {
			if !canServe(node, shard) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: with uniform capability, max load is at most ceil(S/N)+1.
func TestQuickAssignBalance(t *testing.T) {
	f := func(seed int64) bool {
		s, n := 12, 4
		nodes := []string{"a", "b", "c", "d"}
		got, err := Assign(Input{Shards: shardRange(s), Nodes: nodes, CanServe: allServe, Seed: seed})
		if err != nil {
			return false
		}
		load := map[string]int{}
		for _, nd := range got {
			load[nd]++
		}
		for _, l := range load {
			if l > s/n+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
