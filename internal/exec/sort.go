package exec

import (
	"container/heap"
	"sort"

	"eon/internal/types"
)

// SortSpec is one sort key: a column index of the input schema and a
// direction.
type SortSpec struct {
	Col  int
	Desc bool
}

// Sort fully materializes its input and emits it ordered by the keys.
// NULLs sort first ascending (last descending).
type Sort struct {
	input Operator
	keys  []SortSpec
	done  bool
}

// NewSort wraps input with ordering.
func NewSort(input Operator, keys []SortSpec) *Sort {
	return &Sort{input: input, keys: keys}
}

// Schema implements Operator.
func (s *Sort) Schema() types.Schema { return s.input.Schema() }

func compareRows(b *types.Batch, i, j int, keys []SortSpec) int {
	for _, k := range keys {
		c := b.Cols[k.Col].Datum(i).Compare(b.Cols[k.Col].Datum(j))
		if c != 0 {
			if k.Desc {
				return -c
			}
			return c
		}
	}
	return 0
}

// Next implements Operator.
func (s *Sort) Next() (*types.Batch, error) {
	if s.done {
		return nil, nil
	}
	s.done = true
	all, err := Collect(s.input)
	if err != nil {
		return nil, err
	}
	if all.NumRows() == 0 {
		return nil, nil
	}
	perm := make([]int, all.NumRows())
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(x, y int) bool {
		return compareRows(all, perm[x], perm[y], s.keys) < 0
	})
	return all.Gather(perm), nil
}

// TopK keeps only the K smallest rows under the sort keys, using a
// bounded heap — the pattern behind dashboard top-K queries.
type TopK struct {
	input Operator
	keys  []SortSpec
	k     int
	done  bool
}

// NewTopK wraps input with a bounded sort.
func NewTopK(input Operator, keys []SortSpec, k int) *TopK {
	return &TopK{input: input, keys: keys, k: k}
}

// Schema implements Operator.
func (t *TopK) Schema() types.Schema { return t.input.Schema() }

// rowHeap is a max-heap of row indexes under the sort keys, so the
// largest retained row is evictable at the top.
type rowHeap struct {
	batch *types.Batch
	keys  []SortSpec
	idx   []int
}

func (h *rowHeap) Len() int { return len(h.idx) }
func (h *rowHeap) Less(i, j int) bool {
	return compareRows(h.batch, h.idx[i], h.idx[j], h.keys) > 0
}
func (h *rowHeap) Swap(i, j int)      { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *rowHeap) Push(x interface{}) { h.idx = append(h.idx, x.(int)) }
func (h *rowHeap) Pop() interface{} {
	old := h.idx
	n := len(old)
	x := old[n-1]
	h.idx = old[:n-1]
	return x
}

// Next implements Operator.
func (t *TopK) Next() (*types.Batch, error) {
	if t.done {
		return nil, nil
	}
	t.done = true
	all, err := Collect(t.input)
	if err != nil {
		return nil, err
	}
	if all.NumRows() == 0 {
		return nil, nil
	}
	h := &rowHeap{batch: all, keys: t.keys}
	for i := 0; i < all.NumRows(); i++ {
		if h.Len() < t.k {
			heap.Push(h, i)
			continue
		}
		if compareRows(all, i, h.idx[0], t.keys) < 0 {
			h.idx[0] = i
			heap.Fix(h, 0)
		}
	}
	// Extract in ascending order.
	out := make([]int, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(int)
	}
	return all.Gather(out), nil
}
