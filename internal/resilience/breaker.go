package resilience

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker state machine position.
type BreakerState uint8

// Breaker states.
const (
	// Closed passes all requests through, watching the failure rate.
	Closed BreakerState = iota
	// Open sheds every request until the cooldown elapses.
	Open
	// HalfOpen lets a probabilistic fraction of requests probe the
	// backend; one success closes, one failure reopens.
	HalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "closed"
}

// BreakerConfig tunes a circuit breaker.
type BreakerConfig struct {
	// Window is the sliding count of recent outcomes examined (default
	// 20).
	Window int
	// TripRatio is the failure fraction within the window that opens the
	// breaker (default 0.5).
	TripRatio float64
	// MinSamples is the minimum outcomes in the window before the
	// breaker may trip (default 10).
	MinSamples int
	// OpenFor is the shed duration before the breaker half-opens
	// (default 200ms).
	OpenFor time.Duration
	// ProbeProb is the probability a half-open breaker admits a probe
	// (default 0.2): probabilistic half-opening avoids a thundering herd
	// of simultaneous probes from many callers.
	ProbeProb float64
	// Seed makes probe selection deterministic.
	Seed int64
	// Now overrides the clock for tests.
	Now func() time.Time
	// Disabled turns the breaker into a pass-through.
	Disabled bool
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.TripRatio <= 0 {
		c.TripRatio = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 200 * time.Millisecond
	}
	if c.ProbeProb <= 0 {
		c.ProbeProb = 0.2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a circuit breaker over one backend (a store, or one peer
// node). Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig
	rng *lockedRand

	mu       sync.Mutex
	state    BreakerState
	ring     []bool // true = failure
	ringIdx  int
	samples  int
	failures int
	openedAt time.Time

	c *Counters
}

// NewBreaker builds a breaker recording transitions into c (may be nil).
func NewBreaker(cfg BreakerConfig, c *Counters) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{
		cfg:  cfg,
		rng:  newLockedRand(cfg.Seed + 1),
		ring: make([]bool, cfg.Window),
		c:    c,
	}
}

// State returns the current state (advancing open->half-open if the
// cooldown has elapsed).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	return b.state
}

// advanceLocked moves Open to HalfOpen once the cooldown elapses.
func (b *Breaker) advanceLocked() {
	if b.state == Open && b.cfg.Now().Sub(b.openedAt) >= b.cfg.OpenFor {
		b.state = HalfOpen
	}
}

// Allow reports whether a request may proceed. While open it sheds;
// while half-open it admits a probabilistic probe.
func (b *Breaker) Allow() bool {
	if b == nil || b.cfg.Disabled {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	switch b.state {
	case Open:
		b.c.Shed()
		return false
	case HalfOpen:
		if b.rng.float64() < b.cfg.ProbeProb {
			b.c.Probe()
			return true
		}
		b.c.Shed()
		return false
	}
	return true
}

// Record feeds one request outcome. Only failures the caller classifies
// as backend pressure (throttle/transient) should count as failure=true;
// not-found or context cancellation must not trip the breaker.
func (b *Breaker) Record(failure bool) {
	if b == nil || b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	switch b.state {
	case HalfOpen:
		if failure {
			b.state = Open
			b.openedAt = b.cfg.Now()
			b.c.BreakerOpened()
		} else {
			b.state = Closed
			b.resetLocked()
		}
		return
	case Open:
		return // outcomes of straggler requests while open are ignored
	}
	// Closed: slide the outcome window.
	if b.samples == len(b.ring) {
		if b.ring[b.ringIdx] {
			b.failures--
		}
	} else {
		b.samples++
	}
	b.ring[b.ringIdx] = failure
	if failure {
		b.failures++
	}
	b.ringIdx = (b.ringIdx + 1) % len(b.ring)
	if b.samples >= b.cfg.MinSamples &&
		float64(b.failures) >= b.cfg.TripRatio*float64(b.samples) {
		b.state = Open
		b.openedAt = b.cfg.Now()
		b.c.BreakerOpened()
	}
}

// resetLocked clears the outcome window.
func (b *Breaker) resetLocked() {
	for i := range b.ring {
		b.ring[i] = false
	}
	b.ringIdx, b.samples, b.failures = 0, 0, 0
}

// Group is a set of breakers keyed by name (one per peer node), created
// on demand with a shared configuration.
type Group struct {
	cfg BreakerConfig
	c   *Counters

	mu       sync.Mutex
	breakers map[string]*Breaker
}

// NewGroup builds an empty breaker group.
func NewGroup(cfg BreakerConfig, c *Counters) *Group {
	return &Group{cfg: cfg, c: c, breakers: map[string]*Breaker{}}
}

// For returns the breaker for a name, creating it on first use. Each
// member's probe selection is independently seeded from its name so
// probes do not synchronize across peers.
func (g *Group) For(name string) *Breaker {
	g.mu.Lock()
	defer g.mu.Unlock()
	if b, ok := g.breakers[name]; ok {
		return b
	}
	cfg := g.cfg
	for _, ch := range name {
		cfg.Seed = cfg.Seed*131 + int64(ch)
	}
	b := NewBreaker(cfg, g.c)
	g.breakers[name] = b
	return b
}
