package sql

import (
	"eon/internal/expr"
	"eon/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SetUsingSpec denormalizes a column from a dimension table at load time
// (flattened tables, paper §2.1): the column takes DimTable.DimValue of
// the dimension row whose DimKey equals this table's FactKey.
type SetUsingSpec struct {
	DimTable string
	DimValue string
	FactKey  string
	DimKey   string
}

// ColDef is one column definition.
type ColDef struct {
	Name     string
	Type     types.Type
	SetUsing *SetUsingSpec // non-nil for flattened columns
}

// CreateTable is CREATE TABLE name (cols...) [PARTITION BY expr].
type CreateTable struct {
	Name        string
	Cols        []ColDef
	PartitionBy expr.Expr // nil if unpartitioned
}

func (*CreateTable) stmt() {}

// ProjAgg is one aggregate column of a live aggregate projection.
type ProjAgg struct {
	Op    AggOp
	Col   string // aggregated column ("" for COUNT(*))
	Alias string
}

// CreateProjection is CREATE PROJECTION name AS SELECT cols FROM table
// [GROUP BY cols] [ORDER BY cols] [SEGMENTED BY HASH(cols) ALL NODES |
// UNSEGMENTED ALL NODES] [KSAFE n]. A select list containing aggregates
// defines a live aggregate projection (paper §2.1); its plain columns
// are the group keys.
type CreateProjection struct {
	Name       string
	Table      string
	Cols       []string  // plain columns (group keys for live aggregates)
	Aggs       []ProjAgg // non-empty = live aggregate projection
	GroupBy    []string  // optional explicit GROUP BY (must equal Cols)
	OrderBy    []string
	SegmentBy  []string // empty + !Replicated means default segmentation
	Replicated bool     // UNSEGMENTED ALL NODES
	KSafe      int      // -1 if unspecified
}

func (*CreateProjection) stmt() {}

// Insert is INSERT INTO table VALUES (exprs), (exprs), ...
type Insert struct {
	Table string
	Rows  [][]expr.Expr
}

func (*Insert) stmt() {}

// Delete is DELETE FROM table [WHERE pred].
type Delete struct {
	Table string
	Where expr.Expr
}

func (*Delete) stmt() {}

// SetClause is one col = expr assignment.
type SetClause struct {
	Column string
	Value  expr.Expr
}

// Update is UPDATE table SET col=expr, ... [WHERE pred].
type Update struct {
	Table string
	Set   []SetClause
	Where expr.Expr
}

func (*Update) stmt() {}

// AlterAddColumn is ALTER TABLE t ADD COLUMN c type [DEFAULT expr].
type AlterAddColumn struct {
	Table   string
	Col     ColDef
	Default expr.Expr // nil means NULL default
}

func (*AlterAddColumn) stmt() {}

// DropTable is DROP TABLE name.
type DropTable struct {
	Name string
}

func (*DropTable) stmt() {}

// AggOp enumerates aggregate functions.
type AggOp uint8

// Aggregate operators.
const (
	AggCountStar AggOp = iota + 1
	AggCount
	AggCountDistinct
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String names the aggregate.
func (a AggOp) String() string {
	switch a {
	case AggCountStar, AggCount:
		return "COUNT"
	case AggCountDistinct:
		return "COUNT DISTINCT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	}
	return "?"
}

// AggSpec is one aggregate call: op over an argument expression.
type AggSpec struct {
	Op  AggOp
	Arg expr.Expr // nil for COUNT(*)
}

// SelectItem is one output column: either a scalar expression or an
// aggregate, optionally aliased, or the * wildcard.
type SelectItem struct {
	Star  bool
	Agg   *AggSpec
	Expr  expr.Expr
	Alias string
}

// TableRef names a base table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Name returns the effective name the query refers to this table by.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// Join is one JOIN table ON cond clause (inner joins only).
type Join struct {
	Table TableRef
	On    expr.Expr
}

// OrderItem is one ORDER BY key: an expression, an output alias, or a
// 1-based output position.
type OrderItem struct {
	Expr     expr.Expr
	Position int // 1-based; 0 if Expr/Alias used
	Desc     bool
}

// Select is a SELECT query.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Joins    []Join
	Where    expr.Expr
	GroupBy  []expr.Expr
	Having   expr.Expr // aggregate references via output aliases
	OrderBy  []OrderItem
	Limit    int64 // -1 = no limit
}

func (*Select) stmt() {}
