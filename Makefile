GO ?= go

.PHONY: all vet build test race chaos bench

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector.
race:
	$(GO) test -race ./...

# Chaos smoke: the deterministic fault drill (load + query stream +
# node kill + revive under injected shared-storage faults) plus the
# resilience layer's unit tests, race-checked.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestQueryDeadlinePropagates|TestCacheBreakerDegradesToSharedStorage' ./internal/core/
	$(GO) test -race -count=1 ./internal/resilience/ ./internal/objstore/ ./internal/netsim/

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .
