// Package udfs is the user-defined filesystem API (paper §5.3, Figure 9):
// a single abstraction through which the execution engine scans and loads
// files, with interchangeable backends. This reproduction ships three
// implementations: an in-memory filesystem (the default "local disk" of
// simulated nodes), a real POSIX filesystem rooted at a directory, and an
// object-store-backed filesystem (the S3 path).
package udfs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"eon/internal/objstore"
)

// ErrNotFound is returned when a path does not exist.
var ErrNotFound = errors.New("udfs: file not found")

// FileInfo describes one file.
type FileInfo struct {
	Path string
	Size int64
}

// FileSystem is the UDFS API. Paths are slash-separated and relative to
// the filesystem root. Files are written whole and never modified — the
// lowest common denominator the shared-storage backends support.
type FileSystem interface {
	// WriteFile creates a file with the given contents. Overwrite of an
	// existing path is an error.
	WriteFile(ctx context.Context, path string, data []byte) error
	// ReadFile reads a whole file.
	ReadFile(ctx context.Context, path string) ([]byte, error)
	// ReadAt reads length bytes at offset (length < 0 reads to EOF).
	ReadAt(ctx context.Context, path string, offset, length int64) ([]byte, error)
	// Remove deletes a file; removing a missing path is not an error.
	Remove(ctx context.Context, path string) error
	// List returns files whose path starts with prefix, sorted by path.
	List(ctx context.Context, prefix string) ([]FileInfo, error)
}

// Exists reports whether path exists on fs, using the List API (the
// engine never issues HEAD-style probes; see paper §5.3).
func Exists(ctx context.Context, fs FileSystem, path string) (bool, error) {
	infos, err := fs.List(ctx, path)
	if err != nil {
		return false, err
	}
	for _, in := range infos {
		if in.Path == path {
			return true, nil
		}
	}
	return false, nil
}

// MemFS is an in-memory FileSystem, used as the simulated local disk of
// cluster nodes. Safe for concurrent use.
type MemFS struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string][]byte)} }

// WriteFile implements FileSystem.
func (m *MemFS) WriteFile(ctx context.Context, path string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; ok {
		return fmt.Errorf("udfs: %s already exists", path)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.files[path] = cp
	return nil
}

// ReadFile implements FileSystem.
func (m *MemFS) ReadFile(ctx context.Context, path string) ([]byte, error) {
	return m.ReadAt(ctx, path, 0, -1)
}

// ReadAt implements FileSystem.
func (m *MemFS) ReadAt(ctx context.Context, path string, offset, length int64) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if offset < 0 || offset > int64(len(data)) {
		return nil, fmt.Errorf("udfs: offset %d out of range for %s", offset, path)
	}
	end := int64(len(data))
	if length >= 0 && offset+length < end {
		end = offset + length
	}
	cp := make([]byte, end-offset)
	copy(cp, data[offset:end])
	return cp, nil
}

// Remove implements FileSystem.
func (m *MemFS) Remove(ctx context.Context, path string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, path)
	return nil
}

// List implements FileSystem.
func (m *MemFS) List(ctx context.Context, prefix string) ([]FileInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []FileInfo
	for p, d := range m.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, FileInfo{Path: p, Size: int64(len(d))})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// TotalBytes returns the sum of file sizes, used for cache budgeting.
func (m *MemFS) TotalBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var n int64
	for _, d := range m.files {
		n += int64(len(d))
	}
	return n
}

// OSFS is a FileSystem rooted at a real directory on the host.
type OSFS struct {
	root string
}

// NewOSFS returns a POSIX filesystem rooted at dir.
func NewOSFS(dir string) *OSFS { return &OSFS{root: dir} }

func (o *OSFS) real(path string) (string, error) {
	clean := filepath.Clean("/" + path)
	return filepath.Join(o.root, clean), nil
}

// WriteFile implements FileSystem.
func (o *OSFS) WriteFile(ctx context.Context, path string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	rp, err := o.real(path)
	if err != nil {
		return err
	}
	if _, err := os.Stat(rp); err == nil {
		return fmt.Errorf("udfs: %s already exists", path)
	}
	if err := os.MkdirAll(filepath.Dir(rp), 0o755); err != nil {
		return err
	}
	return os.WriteFile(rp, data, 0o644)
}

// ReadFile implements FileSystem.
func (o *OSFS) ReadFile(ctx context.Context, path string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rp, err := o.real(path)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(rp)
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return data, err
}

// ReadAt implements FileSystem.
func (o *OSFS) ReadAt(ctx context.Context, path string, offset, length int64) ([]byte, error) {
	data, err := o.ReadFile(ctx, path)
	if err != nil {
		return nil, err
	}
	if offset < 0 || offset > int64(len(data)) {
		return nil, fmt.Errorf("udfs: offset %d out of range for %s", offset, path)
	}
	end := int64(len(data))
	if length >= 0 && offset+length < end {
		end = offset + length
	}
	return data[offset:end], nil
}

// Remove implements FileSystem.
func (o *OSFS) Remove(ctx context.Context, path string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	rp, err := o.real(path)
	if err != nil {
		return err
	}
	err = os.Remove(rp)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// List implements FileSystem.
func (o *OSFS) List(ctx context.Context, prefix string) ([]FileInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []FileInfo
	err := filepath.Walk(o.root, func(p string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() {
			return nil //nolint:nilerr // skip unreadable entries
		}
		rel, err := filepath.Rel(o.root, p)
		if err != nil {
			return nil //nolint:nilerr
		}
		rel = filepath.ToSlash(rel)
		if strings.HasPrefix(rel, prefix) {
			out = append(out, FileInfo{Path: rel, Size: fi.Size()})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// ObjectFS adapts an objstore.Store to the FileSystem interface — the path
// by which Eon mode reads and writes shared storage.
type ObjectFS struct {
	store objstore.Store
}

// NewObjectFS wraps an object store.
func NewObjectFS(store objstore.Store) *ObjectFS { return &ObjectFS{store: store} }

// Store returns the underlying object store.
func (o *ObjectFS) Store() objstore.Store { return o.store }

// WriteFile implements FileSystem.
func (o *ObjectFS) WriteFile(ctx context.Context, path string, data []byte) error {
	return o.store.Put(ctx, path, data)
}

// ReadFile implements FileSystem.
func (o *ObjectFS) ReadFile(ctx context.Context, path string) ([]byte, error) {
	data, err := o.store.Get(ctx, path)
	if errors.Is(err, objstore.ErrNotFound) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return data, err
}

// ReadAt implements FileSystem.
func (o *ObjectFS) ReadAt(ctx context.Context, path string, offset, length int64) ([]byte, error) {
	data, err := o.store.GetRange(ctx, path, offset, length)
	if errors.Is(err, objstore.ErrNotFound) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return data, err
}

// Remove implements FileSystem.
func (o *ObjectFS) Remove(ctx context.Context, path string) error {
	return o.store.Delete(ctx, path)
}

// List implements FileSystem.
func (o *ObjectFS) List(ctx context.Context, prefix string) ([]FileInfo, error) {
	infos, err := o.store.List(ctx, prefix)
	if err != nil {
		return nil, err
	}
	out := make([]FileInfo, len(infos))
	for i, in := range infos {
		out[i] = FileInfo{Path: in.Key, Size: in.Size}
	}
	return out, nil
}
