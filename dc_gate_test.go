package eon

import (
	"os"
	"runtime"
	"testing"
)

// TestDCOverheadGate enforces the ISSUE 9 acceptance criterion: the Data
// Collector's emit path must cost <=3% on a warm scan-heavy query versus
// a cluster built with DisableDataCollector. It is a micro-benchmark in
// test clothing, so it only runs under `make systables` (EON_DC_GATE=1);
// plain `go test ./...` skips it to keep tier-1 runs deterministic.
func TestDCOverheadGate(t *testing.T) {
	if os.Getenv("EON_DC_GATE") != "1" {
		t.Skip("set EON_DC_GATE=1 (make systables) to run the overhead gate")
	}
	const (
		attempts = 3
		maxRatio = 1.03
	)
	measure := func(disable bool) float64 {
		db := kernelBenchDBDC(t, disable)
		s := db.NewSession()
		if _, err := s.Query(kernelBenchQuery); err != nil {
			t.Fatal(err)
		}
		// Clear the previous measurement's heap so GC debt from one
		// cluster doesn't bill the other side's timed loop.
		runtime.GC()
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Query(kernelBenchQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(r.NsPerOp())
	}
	var last float64
	for i := 0; i < attempts; i++ {
		off := measure(true)
		on := measure(false)
		last = on / off
		t.Logf("attempt %d: on=%.0f ns/op off=%.0f ns/op ratio=%.4f", i+1, on, off, last)
		if last <= maxRatio {
			return
		}
	}
	t.Errorf("data collector overhead %.2f%% exceeds 3%% after %d attempts",
		(last-1)*100, attempts)
}
