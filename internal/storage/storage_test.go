package storage

import (
	"context"
	"strings"
	"testing"
	"testing/quick"

	"eon/internal/catalog"
	"eon/internal/cluster"
	"eon/internal/types"
)

var testInst = cluster.InstanceID("aabbccddeeff00112233445566")

func testProjection() (*catalog.Projection, types.Schema) {
	p := &catalog.Projection{
		OID:         10,
		TableOID:    1,
		Name:        "sales_p1",
		Columns:     []string{"id", "amount", "region"},
		SortKey:     []string{"region", "id"},
		SegmentCols: []string{"id"},
	}
	s := types.Schema{
		{Name: "id", Type: types.Int64},
		{Name: "amount", Type: types.Float64},
		{Name: "region", Type: types.Varchar},
	}
	return p, s
}

func testBatch(s types.Schema) *types.Batch {
	return types.BatchFromRows(s, []types.Row{
		{types.NewInt(3), types.NewFloat(30), types.NewString("west")},
		{types.NewInt(1), types.NewFloat(10), types.NewString("east")},
		{types.NewInt(2), types.NewFloat(20), types.NewString("east")},
	})
}

func TestSIDFormat(t *testing.T) {
	sid := SID(testInst, 255)
	if !strings.HasPrefix(sid, string(testInst)+"_") {
		t.Errorf("sid = %s", sid)
	}
	if !strings.HasSuffix(sid, "00000000000000ff") {
		t.Errorf("sid oid hex = %s", sid)
	}
	if SID(testInst, 1) == SID(testInst, 2) {
		t.Error("sids must differ by oid")
	}
}

func TestDataPathHashPrefix(t *testing.T) {
	sid := SID(testInst, 1)
	p := DataPath(sid, "id")
	if !strings.HasPrefix(p, "data/aa/") {
		t.Errorf("path should use 2-char fanout prefix: %s", p)
	}
	if BundlePath(sid) == p {
		t.Error("bundle path must differ from column path")
	}
	if !strings.HasPrefix(DataPath(sid, "id"), InstancePrefix(testInst)[:8]) {
		t.Error("instance prefix mismatch")
	}
}

func TestBuildContainerSortsAndStats(t *testing.T) {
	p, s := testProjection()
	c := catalog.New()
	built, err := BuildContainer(c, testInst, WriteSpec{
		Projection: p, Schema: s, ShardIndex: 0, BundleThreshold: -1,
	}, testBatch(s))
	if err != nil {
		t.Fatal(err)
	}
	if built.Meta.RowCount != 3 || built.Meta.ShardIndex != 0 {
		t.Errorf("meta = %+v", built.Meta)
	}
	if len(built.Files) != 3 {
		t.Fatalf("files = %d", len(built.Files))
	}
	st := built.Meta.ColStats["amount"]
	if st.Min.F != 10 || st.Max.F != 30 {
		t.Errorf("amount stats = %+v", st)
	}
	// Read back and verify sort order (region asc, id asc).
	fetch := func(ctx context.Context, path string) ([]byte, error) {
		return built.Files[path], nil
	}
	b, err := ReadColumns(context.Background(), built.Meta, s, fetch, 2)
	if err != nil {
		t.Fatal(err)
	}
	ids := b.Cols[0].Ints
	if ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Errorf("sorted ids = %v", ids)
	}
	regions := b.Cols[2].Strs
	if regions[0] != "east" || regions[2] != "west" {
		t.Errorf("sorted regions = %v", regions)
	}
}

func TestBuildContainerBundlesSmall(t *testing.T) {
	p, s := testProjection()
	c := catalog.New()
	built, err := BuildContainer(c, testInst, WriteSpec{
		Projection: p, Schema: s, ShardIndex: 1, // default threshold bundles tiny data
	}, testBatch(s))
	if err != nil {
		t.Fatal(err)
	}
	if built.Meta.Bundle.Path == "" {
		t.Fatal("small container should be bundled")
	}
	if len(built.Files) != 1 {
		t.Errorf("bundle should be one file, got %d", len(built.Files))
	}
	fetch := func(ctx context.Context, path string) ([]byte, error) {
		return built.Files[path], nil
	}
	b, err := ReadColumns(context.Background(), built.Meta, s, fetch, 2)
	if err != nil || b.NumRows() != 3 {
		t.Fatalf("bundle read: %v", err)
	}
}

func TestBuildContainerEmptyBatch(t *testing.T) {
	p, s := testProjection()
	c := catalog.New()
	built, err := BuildContainer(c, testInst, WriteSpec{Projection: p, Schema: s}, types.NewBatch(s, 0))
	if err != nil || built != nil {
		t.Errorf("empty batch should yield nil: %v %v", built, err)
	}
}

func TestBuildContainerSchemaMismatch(t *testing.T) {
	p, s := testProjection()
	c := catalog.New()
	wrong := types.BatchFromRows(s[:1], []types.Row{{types.NewInt(1)}})
	if _, err := BuildContainer(c, testInst, WriteSpec{Projection: p, Schema: s}, wrong); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestOpenColumnsSubset(t *testing.T) {
	p, s := testProjection()
	c := catalog.New()
	built, _ := BuildContainer(c, testInst, WriteSpec{Projection: p, Schema: s, BundleThreshold: -1}, testBatch(s))
	fetch := func(ctx context.Context, path string) ([]byte, error) {
		return built.Files[path], nil
	}
	readers, err := OpenColumns(context.Background(), built.Meta, []string{"amount"}, fetch, 2)
	if err != nil || len(readers) != 1 {
		t.Fatalf("open subset: %v", err)
	}
	if _, err := OpenColumns(context.Background(), built.Meta, []string{"bogus"}, fetch, 2); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestDeleteVectorRoundtrip(t *testing.T) {
	data := BuildDeleteVector([]int64{5, 1, 3, 3, 1})
	got, err := ReadDeleteVector(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Errorf("positions = %v (want deduped sorted)", got)
	}
}

func TestDeleteVectorEmpty(t *testing.T) {
	got, err := ReadDeleteVector(BuildDeleteVector(nil))
	if err != nil || len(got) != 0 {
		t.Errorf("empty dv = %v, %v", got, err)
	}
}

func TestNewDeleteVectorMeta(t *testing.T) {
	c := catalog.New()
	sc := &catalog.StorageContainer{OID: 5, ProjOID: 10, ShardIndex: 2}
	dv, data := NewDeleteVectorMeta(c, testInst, sc, []int64{0, 2, 2}, "")
	if dv.ContainerOID != 5 || dv.ShardIndex != 2 || dv.Count != 2 {
		t.Errorf("dv = %+v", dv)
	}
	if int64(len(data)) != dv.File.Size {
		t.Error("size mismatch")
	}
	if !strings.HasSuffix(dv.File.Path, "_dv") {
		t.Errorf("dv path = %s", dv.File.Path)
	}
}

func TestDeleteSet(t *testing.T) {
	ds := NewDeleteSet([]int64{1, 3}, []int64{3, 5})
	if ds.Len() != 3 {
		t.Errorf("len = %d", ds.Len())
	}
	if !ds.Contains(1) || !ds.Contains(5) || ds.Contains(0) {
		t.Error("contains wrong")
	}
	live := ds.LivePositions(0, 6)
	if len(live) != 3 || live[0] != 0 || live[1] != 2 || live[2] != 4 {
		t.Errorf("live = %v", live)
	}
	// Offset window.
	live = ds.LivePositions(3, 3) // positions 3,4,5 -> live 4 (index 1)
	if len(live) != 1 || live[0] != 1 {
		t.Errorf("offset live = %v", live)
	}
}

func TestDeleteSetEmptyFastPath(t *testing.T) {
	ds := NewDeleteSet()
	live := ds.LivePositions(100, 3)
	if len(live) != 3 {
		t.Errorf("live = %v", live)
	}
}

// Property: delete vectors roundtrip any position set.
func TestQuickDeleteVectorRoundtrip(t *testing.T) {
	f := func(raw []uint16) bool {
		positions := make([]int64, len(raw))
		for i, r := range raw {
			positions[i] = int64(r)
		}
		got, err := ReadDeleteVector(BuildDeleteVector(positions))
		if err != nil {
			return false
		}
		want := map[int64]bool{}
		for _, p := range positions {
			want[p] = true
		}
		if len(got) != len(want) {
			return false
		}
		for i, p := range got {
			if !want[p] {
				return false
			}
			if i > 0 && got[i-1] >= p {
				return false // must be strictly sorted
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestContainerAllFiles(t *testing.T) {
	sc := &catalog.StorageContainer{
		Files: map[string]catalog.FileRef{
			"a": {Path: "p1", Size: 1},
			"b": {Path: "p2", Size: 2},
		},
	}
	if got := sc.AllFiles(); len(got) != 2 {
		t.Errorf("allfiles = %v", got)
	}
	sc.Bundle = catalog.FileRef{Path: "bundle", Size: 3}
	got := sc.AllFiles()
	if len(got) != 1 || got[0].Path != "bundle" {
		t.Errorf("bundled allfiles = %v", got)
	}
}
