package expr

import (
	"fmt"
	"strings"

	"eon/internal/hashring"
	"eon/internal/types"
)

// EvalRow evaluates a bound expression against one row using SQL
// three-valued logic: comparisons and arithmetic over NULL yield NULL;
// AND/OR follow Kleene logic.
func EvalRow(e Expr, row types.Row) (types.Datum, error) {
	switch n := e.(type) {
	case *ColumnRef:
		if n.Index < 0 || n.Index >= len(row) {
			return types.Datum{}, fmt.Errorf("expr: column %q not bound", n.Name)
		}
		return row[n.Index], nil
	case *Literal:
		return n.Value, nil
	case *Param:
		// Parameters are substituted before execution (SubstituteParams);
		// reaching one here means the statement ran without its arguments.
		return types.Datum{}, fmt.Errorf("expr: unbound parameter $%d", n.Index)
	case *Binary:
		return evalBinary(n, row)
	case *Unary:
		v, err := EvalRow(n.E, row)
		if err != nil {
			return types.Datum{}, err
		}
		switch n.Op {
		case OpNot:
			if v.Null {
				return types.NullDatum(types.Bool), nil
			}
			return types.NewBool(!v.B), nil
		case OpNeg:
			if v.Null {
				return types.NullDatum(n.Typ), nil
			}
			if v.K.Physical() == types.Float64 {
				return types.NewFloat(-v.F), nil
			}
			out := v
			out.I = -v.I
			return out, nil
		}
		return types.Datum{}, fmt.Errorf("expr: bad unary op %v", n.Op)
	case *IsNull:
		v, err := EvalRow(n.E, row)
		if err != nil {
			return types.Datum{}, err
		}
		return types.NewBool(v.Null != n.Negate), nil
	case *In:
		return evalIn(n, row)
	case *Like:
		v, err := EvalRow(n.E, row)
		if err != nil {
			return types.Datum{}, err
		}
		if v.Null {
			return types.NullDatum(types.Bool), nil
		}
		return types.NewBool(n.matcher().match(v.S) != n.Negate), nil
	case *Case:
		for _, w := range n.Whens {
			c, err := EvalRow(w.Cond, row)
			if err != nil {
				return types.Datum{}, err
			}
			if !c.Null && c.B {
				return EvalRow(w.Then, row)
			}
		}
		if n.Else != nil {
			return EvalRow(n.Else, row)
		}
		return types.NullDatum(n.Typ), nil
	case *Func:
		return evalFunc(n, row)
	}
	return types.Datum{}, fmt.Errorf("expr: unknown node %T", e)
}

func evalBinary(n *Binary, row types.Row) (types.Datum, error) {
	l, err := EvalRow(n.L, row)
	if err != nil {
		return types.Datum{}, err
	}
	// AND/OR use Kleene logic and may short-circuit.
	if n.Op == OpAnd || n.Op == OpOr {
		if n.Op == OpAnd && !l.Null && !l.B {
			return types.NewBool(false), nil
		}
		if n.Op == OpOr && !l.Null && l.B {
			return types.NewBool(true), nil
		}
		r, err := EvalRow(n.R, row)
		if err != nil {
			return types.Datum{}, err
		}
		switch n.Op {
		case OpAnd:
			if !r.Null && !r.B {
				return types.NewBool(false), nil
			}
			if l.Null || r.Null {
				return types.NullDatum(types.Bool), nil
			}
			return types.NewBool(l.B && r.B), nil
		default: // OpOr
			if !r.Null && r.B {
				return types.NewBool(true), nil
			}
			if l.Null || r.Null {
				return types.NullDatum(types.Bool), nil
			}
			return types.NewBool(l.B || r.B), nil
		}
	}
	r, err := EvalRow(n.R, row)
	if err != nil {
		return types.Datum{}, err
	}
	if l.Null || r.Null {
		return types.NullDatum(n.Typ), nil
	}
	if n.Op.IsComparison() {
		c := compareMixed(l, r)
		var out bool
		switch n.Op {
		case OpEq:
			out = c == 0
		case OpNe:
			out = c != 0
		case OpLt:
			out = c < 0
		case OpLe:
			out = c <= 0
		case OpGt:
			out = c > 0
		case OpGe:
			out = c >= 0
		}
		return types.NewBool(out), nil
	}
	return evalArith(n.Op, n.Typ, l, r)
}

// compareMixed compares two non-null datums, coercing int/float pairs.
func compareMixed(l, r types.Datum) int {
	lp, rp := l.K.Physical(), r.K.Physical()
	if lp == rp {
		return l.Compare(r)
	}
	if (lp == types.Int64 || lp == types.Float64) && (rp == types.Int64 || rp == types.Float64) {
		lf, rf := asFloat(l), asFloat(r)
		switch {
		case lf < rf:
			return -1
		case lf > rf:
			return 1
		}
		return 0
	}
	return strings.Compare(l.String(), r.String())
}

func asFloat(d types.Datum) float64 {
	if d.K.Physical() == types.Float64 {
		return d.F
	}
	return float64(d.I)
}

func evalArith(op Op, typ types.Type, l, r types.Datum) (types.Datum, error) {
	if typ.Physical() == types.Float64 {
		lf, rf := asFloat(l), asFloat(r)
		var out float64
		switch op {
		case OpAdd:
			out = lf + rf
		case OpSub:
			out = lf - rf
		case OpMul:
			out = lf * rf
		case OpDiv:
			if rf == 0 {
				return types.NullDatum(types.Float64), nil
			}
			out = lf / rf
		default:
			return types.Datum{}, fmt.Errorf("expr: op %v not valid for floats", op)
		}
		return types.NewFloat(out), nil
	}
	var out int64
	switch op {
	case OpAdd:
		out = l.I + r.I
	case OpSub:
		out = l.I - r.I
	case OpMul:
		out = l.I * r.I
	case OpDiv:
		if r.I == 0 {
			return types.NullDatum(typ), nil
		}
		out = l.I / r.I
	case OpMod:
		if r.I == 0 {
			return types.NullDatum(typ), nil
		}
		out = l.I % r.I
	default:
		return types.Datum{}, fmt.Errorf("expr: bad arithmetic op %v", op)
	}
	d := types.Datum{K: typ, I: out}
	return d, nil
}

func evalIn(n *In, row types.Row) (types.Datum, error) {
	v, err := EvalRow(n.E, row)
	if err != nil {
		return types.Datum{}, err
	}
	if v.Null {
		return types.NullDatum(types.Bool), nil
	}
	if n.constOK {
		return n.constMember(v), nil
	}
	sawNull := false
	for _, le := range n.List {
		x, err := EvalRow(le, row)
		if err != nil {
			return types.Datum{}, err
		}
		if x.Null {
			sawNull = true
			continue
		}
		if compareMixed(v, x) == 0 {
			return types.NewBool(!n.Negate), nil
		}
	}
	if sawNull {
		return types.NullDatum(types.Bool), nil
	}
	return types.NewBool(n.Negate), nil
}

// constMember resolves membership of a non-NULL value against the
// hoisted constant list (set lookup when typed, compareMixed loop
// otherwise), applying SQL IN's NULL-in-list semantics.
func (n *In) constMember(v types.Datum) types.Datum {
	found := false
	switch {
	case n.constInts != nil:
		_, found = n.constInts[v.I]
	case n.constStrs != nil:
		_, found = n.constStrs[v.S]
	default:
		for _, d := range n.constList {
			if compareMixed(v, d) == 0 {
				found = true
				break
			}
		}
	}
	if found {
		return types.NewBool(!n.Negate)
	}
	if n.constNull {
		return types.NullDatum(types.Bool)
	}
	return types.NewBool(n.Negate)
}

func evalFunc(n *Func, row types.Row) (types.Datum, error) {
	args := make([]types.Datum, len(n.Args))
	for i, a := range n.Args {
		v, err := EvalRow(a, row)
		if err != nil {
			return types.Datum{}, err
		}
		args[i] = v
	}
	name := strings.ToUpper(n.Name)
	switch name {
	case "HASH":
		// HASH over multiple args composes like segmentation hashing.
		h := hashring.HashRowCols(args, idxRange(len(args)))
		return types.NewInt(int64(h)), nil
	case "COALESCE":
		for _, a := range args {
			if !a.Null {
				return a, nil
			}
		}
		return types.NullDatum(n.Typ), nil
	}
	// Remaining functions are strict: NULL in, NULL out.
	for _, a := range args {
		if a.Null {
			return types.NullDatum(n.Typ), nil
		}
	}
	switch name {
	case "ABS":
		if args[0].K.Physical() == types.Float64 {
			f := args[0].F
			if f < 0 {
				f = -f
			}
			return types.NewFloat(f), nil
		}
		v := args[0].I
		if v < 0 {
			v = -v
		}
		return types.NewInt(v), nil
	case "LENGTH":
		return types.NewInt(int64(len(args[0].S))), nil
	case "LOWER":
		return types.NewString(strings.ToLower(args[0].S)), nil
	case "UPPER":
		return types.NewString(strings.ToUpper(args[0].S)), nil
	case "SUBSTR":
		s := args[0].S
		start := int(args[1].I) - 1
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		end := len(s)
		if len(args) > 2 {
			end = start + int(args[2].I)
			if end > len(s) {
				end = len(s)
			}
			if end < start {
				end = start
			}
		}
		return types.NewString(s[start:end]), nil
	case "EXTRACT", "YEAR", "MONTH", "DAY":
		return evalExtract(name, args)
	}
	return types.Datum{}, fmt.Errorf("expr: unknown function %q", n.Name)
}

// evalExtract handles EXTRACT('field', ts) and the YEAR/MONTH/DAY
// shorthands over Date and Timestamp datums.
func evalExtract(name string, args []types.Datum) (types.Datum, error) {
	field := name
	val := args[0]
	if name == "EXTRACT" {
		if len(args) != 2 {
			return types.Datum{}, fmt.Errorf("expr: EXTRACT needs (field, value)")
		}
		field = strings.ToUpper(args[0].S)
		val = args[1]
	}
	var secs int64
	switch val.K {
	case types.Date:
		secs = val.I * 86400
	case types.Timestamp:
		secs = val.I / 1e6
	default:
		secs = val.I
	}
	days := secs / 86400
	y, m, d := civilFromDays(days)
	switch field {
	case "YEAR":
		return types.NewInt(y), nil
	case "MONTH":
		return types.NewInt(m), nil
	case "DAY":
		return types.NewInt(d), nil
	case "EPOCH":
		return types.NewInt(secs), nil
	case "HOUR":
		return types.NewInt((secs % 86400) / 3600), nil
	}
	return types.Datum{}, fmt.Errorf("expr: unknown EXTRACT field %q", field)
}

// civilFromDays converts days since the Unix epoch to (year, month, day)
// using Howard Hinnant's civil-from-days algorithm.
func civilFromDays(z int64) (int64, int64, int64) {
	z += 719468
	era := z / 146097
	if z < 0 {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d := doy - (153*mp+2)/5 + 1
	m := mp + 3
	if mp >= 10 {
		m = mp - 9
	}
	if m <= 2 {
		y++
	}
	return y, m, d
}

func idxRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single byte).
// The pattern is compiled (prefix/suffix/contains fast paths, iterative
// general walk) — see like.go. Bound Like nodes cache the compiled form;
// this helper compiles per call for direct row evaluation.
func likeMatch(s, pattern string) bool {
	return compileLike(pattern).match(s)
}

// EvalBatch evaluates a bound expression over every row of a batch,
// returning a vector of results.
func EvalBatch(e Expr, b *types.Batch) (*types.Vector, error) {
	n := b.NumRows()
	out := types.NewVector(e.Type(), n)
	row := make(types.Row, b.NumCols())
	for i := 0; i < n; i++ {
		for j, c := range b.Cols {
			row[j] = c.Datum(i)
		}
		v, err := EvalRow(e, row)
		if err != nil {
			return nil, err
		}
		out.Append(v)
	}
	return out, nil
}

// FilterBatch returns the row indexes of b for which the bound boolean
// expression evaluates to TRUE (NULL and FALSE are excluded, per SQL
// WHERE semantics).
func FilterBatch(e Expr, b *types.Batch) ([]int, error) {
	n := b.NumRows()
	var sel []int
	row := make(types.Row, b.NumCols())
	for i := 0; i < n; i++ {
		for j, c := range b.Cols {
			row[j] = c.Datum(i)
		}
		v, err := EvalRow(e, row)
		if err != nil {
			return nil, err
		}
		if !v.Null && v.B {
			sel = append(sel, i)
		}
	}
	return sel, nil
}
