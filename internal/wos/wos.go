// Package wos implements the Write Optimized Store (paper §2.3): a
// per-node, in-memory, unencoded row buffer that absorbs small inserts so
// physical ROS writes contain enough rows to amortize their cost. The WOS
// exists only in Enterprise mode — Eon mode disables it because memory
// divergence between peers would let node storage diverge (§5.1).
package wos

import (
	"sync"

	"eon/internal/catalog"
	"eon/internal/types"
)

// Store is one node's WOS, holding buffered rows per projection.
type Store struct {
	mu      sync.Mutex
	data    map[catalog.OID]*types.Batch
	schemas map[catalog.OID]types.Schema
}

// New returns an empty WOS.
func New() *Store {
	return &Store{
		data:    map[catalog.OID]*types.Batch{},
		schemas: map[catalog.OID]types.Schema{},
	}
}

// Insert buffers rows for a projection. The batch's columns must align
// with the projection schema. Data is neither sorted nor encoded in the
// WOS.
func (s *Store) Insert(proj catalog.OID, schema types.Schema, batch *types.Batch) {
	if batch == nil || batch.NumRows() == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.data[proj]
	if !ok {
		cur = types.NewBatch(schema, batch.NumRows())
		s.data[proj] = cur
		s.schemas[proj] = schema
	}
	cur.AppendBatch(batch)
}

// Rows returns a copy of the buffered rows for a projection (queries must
// see WOS contents). Returns nil when empty.
func (s *Store) Rows(proj catalog.OID) *types.Batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.data[proj]
	if !ok || cur.NumRows() == 0 {
		return nil
	}
	out := types.NewBatch(s.schemas[proj], cur.NumRows())
	out.AppendBatch(cur)
	return out
}

// RowCount returns the buffered row count for a projection.
func (s *Store) RowCount(proj catalog.OID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.data[proj]; ok {
		return cur.NumRows()
	}
	return 0
}

// TotalRows returns the buffered row count across all projections.
func (s *Store) TotalRows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, b := range s.data {
		n += b.NumRows()
	}
	return n
}

// Drain removes and returns all buffered rows of a projection — the
// moveout operation's input (§2.3). Returns nil when empty.
func (s *Store) Drain(proj catalog.OID) *types.Batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.data[proj]
	if !ok || cur.NumRows() == 0 {
		return nil
	}
	delete(s.data, proj)
	return cur
}

// RemoveWhere deletes buffered rows matching pred and returns them (in
// projection column order). The WOS is volatile, unencoded memory, so
// deletion rewrites the buffer in place rather than using delete vectors.
func (s *Store) RemoveWhere(proj catalog.OID, pred func(types.Row) (bool, error)) (*types.Batch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.data[proj]
	if !ok || cur.NumRows() == 0 {
		return nil, nil
	}
	schema := s.schemas[proj]
	var keep, remove []int
	for i := 0; i < cur.NumRows(); i++ {
		match, err := pred(cur.Row(i))
		if err != nil {
			return nil, err
		}
		if match {
			remove = append(remove, i)
		} else {
			keep = append(keep, i)
		}
	}
	if len(remove) == 0 {
		return nil, nil
	}
	removed := cur.Gather(remove)
	if len(keep) == 0 {
		delete(s.data, proj)
	} else {
		s.data[proj] = cur.Gather(keep)
	}
	_ = schema
	return removed, nil
}

// Transform rewrites a projection's buffered rows in place (used by
// flattened-column refresh to recompute denormalized values that only
// exist in memory). fn receives the current batch and returns the
// replacement; a nil return empties the buffer.
func (s *Store) Transform(proj catalog.OID, fn func(*types.Batch) (*types.Batch, error)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.data[proj]
	if !ok || cur.NumRows() == 0 {
		return nil
	}
	next, err := fn(cur)
	if err != nil {
		return err
	}
	if next == nil || next.NumRows() == 0 {
		delete(s.data, proj)
		return nil
	}
	s.data[proj] = next
	return nil
}

// Projections lists projections with buffered rows.
func (s *Store) Projections() []catalog.OID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]catalog.OID, 0, len(s.data))
	for oid, b := range s.data {
		if b.NumRows() > 0 {
			out = append(out, oid)
		}
	}
	return out
}
