package workload

// Query is one named benchmark query.
type Query struct {
	Name string
	SQL  string
}

// TPCHQueries returns the twenty analytic queries of the Figure 10
// experiment, written in the engine's SQL dialect over the TPC-H-shaped
// schema. They cover the paper's workload spectrum: wide scans with
// selective date predicates, single and multi-way joins (co-segmented,
// replicated-dimension and reshuffled), grouped and global aggregation,
// top-k, DISTINCT and CASE arithmetic.
func TPCHQueries() []Query {
	return []Query{
		{"Q1", `SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty,
			SUM(l_extendedprice) AS sum_base, SUM(l_extendedprice * (1 - l_discount)) AS sum_disc,
			AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS avg_price, COUNT(*) AS n
			FROM lineitem WHERE l_shipdate <= DATE '1998-06-01'
			GROUP BY l_returnflag, l_linestatus ORDER BY 1, 2`},
		{"Q2", `SELECT p_brand, MIN(p_retailprice) AS lo, MAX(p_retailprice) AS hi, COUNT(*) AS n
			FROM part WHERE p_type LIKE '%STEEL%' GROUP BY p_brand ORDER BY p_brand`},
		{"Q3", `SELECT o.o_orderkey, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue, o.o_orderdate
			FROM orders o JOIN lineitem l ON l.l_orderkey = o.o_orderkey
			WHERE o.o_orderdate < DATE '1995-03-15'
			GROUP BY o.o_orderkey, o.o_orderdate ORDER BY revenue DESC LIMIT 10`},
		{"Q4", `SELECT o_orderpriority, COUNT(*) AS order_count
			FROM orders WHERE o_orderdate >= DATE '1993-07-01' AND o_orderdate < DATE '1993-10-01'
			GROUP BY o_orderpriority ORDER BY o_orderpriority`},
		{"Q5", `SELECT c.c_mktsegment, SUM(o.o_totalprice) AS revenue
			FROM orders o JOIN customer c ON o.o_custkey = c.c_custkey
			WHERE o.o_orderdate >= DATE '1994-01-01' AND o.o_orderdate < DATE '1995-01-01'
			GROUP BY c.c_mktsegment ORDER BY revenue DESC`},
		{"Q6", `SELECT SUM(l_extendedprice * l_discount) AS revenue
			FROM lineitem WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
			AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24`},
		{"Q7", `SELECT s.s_name, COUNT(*) AS shipments
			FROM lineitem l JOIN supplier s ON l.l_suppkey = s.s_suppkey
			WHERE l.l_shipdate >= DATE '1995-01-01'
			GROUP BY s.s_name ORDER BY shipments DESC LIMIT 10`},
		{"Q8", `SELECT n.n_name, SUM(c.c_acctbal) AS total_bal, COUNT(*) AS customers
			FROM customer c JOIN nation n ON c.c_nationkey = n.n_nationkey
			GROUP BY n.n_name ORDER BY n.n_name`},
		{"Q9", `SELECT p.p_brand, SUM(l.l_extendedprice * (1 - l.l_discount)) AS profit
			FROM lineitem l JOIN part p ON l.l_partkey = p.p_partkey
			GROUP BY p.p_brand ORDER BY profit DESC`},
		{"Q10", `SELECT c.c_custkey, c.c_name, SUM(o.o_totalprice) AS spent
			FROM orders o JOIN customer c ON o.o_custkey = c.c_custkey
			WHERE o.o_orderdate >= DATE '1993-10-01'
			GROUP BY c.c_custkey, c.c_name ORDER BY spent DESC LIMIT 20`},
		{"Q11", `SELECT l_returnflag, COUNT(DISTINCT l_orderkey) AS orders
			FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag`},
		{"Q12", `SELECT o.o_orderpriority, COUNT(*) AS n
			FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey
			WHERE l.l_shipdate > o.o_orderdate AND l.l_shipdate < DATE '1997-01-01'
			GROUP BY o.o_orderpriority ORDER BY 1`},
		{"Q13", `SELECT o_orderstatus, COUNT(*) AS n, AVG(o_totalprice) AS avg_price
			FROM orders GROUP BY o_orderstatus ORDER BY o_orderstatus`},
		{"Q14", `SELECT SUM(CASE WHEN p.p_type LIKE '%BRASS%' THEN l.l_extendedprice * (1 - l.l_discount) ELSE 0 END) AS promo,
			SUM(l.l_extendedprice * (1 - l.l_discount)) AS total
			FROM lineitem l JOIN part p ON l.l_partkey = p.p_partkey
			WHERE l.l_shipdate >= DATE '1995-09-01' AND l.l_shipdate < DATE '1995-12-01'`},
		{"Q15", `SELECT l_suppkey, SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
			FROM lineitem WHERE l_shipdate >= DATE '1996-01-01' AND l_shipdate < DATE '1996-04-01'
			GROUP BY l_suppkey ORDER BY total_revenue DESC LIMIT 5`},
		{"Q16", `SELECT p_brand, p_type, COUNT(DISTINCT p_partkey) AS cnt
			FROM part WHERE p_brand <> 'Brand#45' GROUP BY p_brand, p_type ORDER BY cnt DESC, 1, 2 LIMIT 20`},
		{"Q17", `SELECT AVG(l_quantity) AS avg_qty, SUM(l_extendedprice) AS total_price, COUNT(*) AS n
			FROM lineitem WHERE l_quantity < 10`},
		{"Q18", `SELECT o.o_orderkey, o.o_totalprice, SUM(l.l_quantity) AS total_qty
			FROM orders o JOIN lineitem l ON l.l_orderkey = o.o_orderkey
			GROUP BY o.o_orderkey, o.o_totalprice HAVING total_qty > 150
			ORDER BY o.o_totalprice DESC LIMIT 10`},
		{"Q19", `SELECT SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
			FROM lineitem l JOIN part p ON l.l_partkey = p.p_partkey
			WHERE p.p_brand IN ('Brand#11', 'Brand#22') AND l.l_quantity BETWEEN 5 AND 35`},
		{"Q20", `SELECT n.n_name, s.s_name, s.s_acctbal
			FROM supplier s JOIN nation n ON s.s_nationkey = n.n_nationkey
			WHERE s.s_acctbal > 0 ORDER BY s.s_acctbal DESC LIMIT 15`},
	}
}

// DashboardQuery is the customer-supplied short query of Figure 11a:
// multiple joins and aggregations over co-segmented data that normally
// runs in about 100 milliseconds.
const DashboardQuery = `SELECT c.c_mktsegment, COUNT(*) AS orders, SUM(o.o_totalprice) AS revenue
	FROM orders o JOIN customer c ON o.o_custkey = c.c_custkey
	WHERE o.o_orderdate >= DATE '1997-01-01'
	GROUP BY c.c_mktsegment ORDER BY revenue DESC`

// NodeDownQuery is the Figure 12 workload: a TPC-H-style query with
// multiple aggregations and a group by.
const NodeDownQuery = `SELECT l_returnflag, COUNT(*) AS n, SUM(l_quantity) AS qty,
	SUM(l_extendedprice * (1 - l_discount)) AS revenue, AVG(l_discount) AS disc
	FROM lineitem WHERE l_shipdate > DATE '1993-01-01' GROUP BY l_returnflag`
