package core

import (
	"testing"

	"eon/internal/catalog"
	"eon/internal/shard"
)

// TestSpareLifecycle walks a warm spare through its whole life:
// provision (PASSIVE everywhere, depot warmed, invisible to planning and
// queries), stay warm through subsequent loads via the commit-time ship
// path, then promote over a killed member with a single catalog flip.
func TestSpareLifecycle(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	setupSales(t, db, 60)
	// Populate the member caches so the spare has something to warm from.
	mustQuery(t, db.NewSession(), `SELECT COUNT(*) FROM sales`)

	if err := db.AddSpare(NodeSpec{Name: "spare1"}); err != nil {
		t.Fatal(err)
	}
	// Idempotent: re-provisioning an existing spare is a no-op.
	if err := db.AddSpare(NodeSpec{Name: "spare1"}); err != nil {
		t.Fatalf("AddSpare re-entry: %v", err)
	}
	if got := db.Spares(); len(got) != 1 || got[0] != "spare1" {
		t.Fatalf("Spares() = %v", got)
	}

	init, _ := db.Node("node1")
	snap := init.Catalog().Snapshot()
	cn, ok := snap.NodeByName("spare1")
	if !ok || !cn.Spare {
		t.Fatalf("catalog node = %+v, want spare", cn)
	}
	subs := snap.Subscriptions("spare1")
	if want := snap.SegmentShardCount() + 1; len(subs) != want {
		t.Fatalf("spare has %d subscriptions, want %d (all shards + replica)", len(subs), want)
	}
	for _, s := range subs {
		if s.State != catalog.SubPassive {
			t.Fatalf("spare subscription on shard %d is %v, want PASSIVE", s.ShardIndex, s.State)
		}
	}
	// The provisioning warm pulled the working set into the spare depot.
	sp, _ := db.Node("spare1")
	if sp.Cache().Stats().BytesCached == 0 {
		t.Fatal("spare depot cold after AddSpare warm")
	}

	// Spares are invisible to rebalance planning: with the spare's
	// PASSIVE subscriptions excluded, a converged cluster plans nothing.
	if acts := shard.PlanRebalance(snap, shard.PlanOptions{
		ReplicationFactor: db.ReplicationFactor(),
		IgnoreNodes:       []string{"spare1"},
	}); len(acts) != 0 {
		t.Fatalf("planner wants %d actions on a converged cluster with a spare", len(acts))
	}
	// Without the exclusion the PASSIVE pre-subscriptions would mask real
	// under-replication — guard the IgnoreNodes contract.
	if acts := shard.PlanRebalance(snap, shard.PlanOptions{ReplicationFactor: db.ReplicationFactor()}); len(acts) != 0 {
		t.Fatalf("spare PASSIVE subs changed unfiltered planning: %d actions", len(acts))
	}

	// New loads ship to PASSIVE subscribers too, keeping the depot warm.
	before := sp.Cache().Stats().BytesCached
	setupMoreSales(t, db, 1000, 40)
	if after := sp.Cache().Stats().BytesCached; after <= before {
		t.Fatalf("spare depot did not grow on load: %d -> %d", before, after)
	}

	// Queries never touch the spare (no ACTIVE subscriptions).
	res := mustQuery(t, db.NewSession(), `SELECT COUNT(*) FROM sales`)
	if res.Row(t, 0)[0].I != 100 {
		t.Fatalf("count = %v", res.Rows())
	}

	// Promotion: kill a member, flip the spare in, exact results resume.
	if err := db.KillNode("node2"); err != nil {
		t.Fatal(err)
	}
	if err := db.PromoteSpare("spare1", ""); err != nil {
		t.Fatal(err)
	}
	snap = init.Catalog().Snapshot()
	cn, _ = snap.NodeByName("spare1")
	if cn.Spare {
		t.Fatal("spare flag survived promotion")
	}
	for _, s := range snap.Subscriptions("spare1") {
		if s.State != catalog.SubActive {
			t.Fatalf("post-promotion subscription on shard %d is %v, want ACTIVE", s.ShardIndex, s.State)
		}
	}
	if sp.Spare() {
		t.Fatal("runtime spare flag survived promotion")
	}
	if v := shard.CheckViability(snap, db.UpNodes()); !v.OK {
		t.Fatalf("cluster not viable after promotion: %s", v.Reason)
	}
	res = mustQuery(t, db.NewSession(), `SELECT COUNT(*), SUM(sale_id) FROM sales`)
	r := res.Row(t, 0)
	var wantSum int64
	for i := 1; i <= 60; i++ {
		wantSum += int64(i)
	}
	for i := 1001; i <= 1040; i++ {
		wantSum += int64(i)
	}
	if r[0].I != 100 || r[1].I != wantSum {
		t.Fatalf("post-promotion result %d/%d, want 100/%d", r[0].I, r[1].I, wantSum)
	}

	// PromoteSpare re-entry after completion is a no-op.
	if err := db.PromoteSpare("spare1", ""); err != nil {
		t.Fatalf("PromoteSpare re-entry: %v", err)
	}
	// The dead husk can now be removed; the cluster stays viable.
	if err := db.RemoveNode("node2"); err != nil {
		t.Fatal(err)
	}
	if db.IsShutdown() {
		t.Fatal("cluster shut down removing the replaced node")
	}
	res = mustQuery(t, db.NewSession(), `SELECT COUNT(*) FROM sales`)
	if res.Row(t, 0)[0].I != 100 {
		t.Fatalf("post-removal count = %v", res.Rows())
	}
}

// TestSpareRejected covers the error surface: Enterprise mode, duplicate
// non-spare names, promoting a down spare.
func TestSpareRejected(t *testing.T) {
	ent := newTestDB(t, ModeEnterprise, 2, 2)
	if err := ent.AddSpare(NodeSpec{Name: "s"}); err == nil {
		t.Fatal("AddSpare succeeded in Enterprise mode")
	}

	db := newTestDB(t, ModeEon, 2, 2)
	if err := db.AddSpare(NodeSpec{Name: "node1"}); err == nil {
		t.Fatal("AddSpare reused a member name")
	}
	if err := db.AddSpare(NodeSpec{Name: "spare1"}); err != nil {
		t.Fatal(err)
	}
	if err := db.KillNode("spare1"); err != nil {
		t.Fatal(err)
	}
	if err := db.PromoteSpare("spare1", ""); err == nil {
		t.Fatal("promoted a down spare")
	}
	// A killed spare must not cost the cluster its viability.
	if db.IsShutdown() {
		t.Fatal("losing a spare shut the cluster down")
	}
	// Recovery brings it back as a warm spare, not a member.
	if err := db.RecoverNode("spare1"); err != nil {
		t.Fatal(err)
	}
	sp, _ := db.Node("spare1")
	if !sp.Spare() {
		t.Fatal("recovered spare lost its spare flag")
	}
}
