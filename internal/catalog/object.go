// Package catalog implements the Vertica catalog (paper §2.4) and its Eon
// extensions (§3): an in-memory multi-version store of metadata objects
// with copy-on-write snapshots, optimistic concurrency control for
// writers, a redo transaction log with an incrementing version counter,
// periodic checkpoints (two retained), truncation, and a division of
// objects into global objects (on every node) and shard-scoped storage
// objects (only on subscribing nodes).
package catalog

import (
	"encoding/json"
	"fmt"

	"eon/internal/types"
)

// OID identifies a catalog object.
type OID uint64

// Kind discriminates catalog object types.
type Kind uint8

// The catalog object kinds. Table through Node are global objects;
// StorageContainer and DeleteVector are shard-scoped storage objects.
const (
	KindTable Kind = iota + 1
	KindProjection
	KindShard
	KindSubscription
	KindNode
	KindStorageContainer
	KindDeleteVector
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindTable:
		return "table"
	case KindProjection:
		return "projection"
	case KindShard:
		return "shard"
	case KindSubscription:
		return "subscription"
	case KindNode:
		return "node"
	case KindStorageContainer:
		return "storage"
	case KindDeleteVector:
		return "deletevector"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// GlobalShard is the ShardIndex of global objects, present in every
// node's catalog.
const GlobalShard = -1

// ReplicaShard is the shard index holding storage metadata of replicated
// projections (paper §3.1: "Replicated projections have their storage
// metadata associated with a replica shard").
const ReplicaShard = -2

// Object is a catalog object. Implementations are plain JSON-serializable
// structs; they are treated as immutable once placed in a snapshot —
// writers must Clone before mutating (copy-on-write).
type Object interface {
	GetOID() OID
	Kind() Kind
	// Shard returns the shard index the object belongs to, GlobalShard
	// for global objects or ReplicaShard for replicated storage.
	Shard() int
	// Clone returns a deep copy safe to mutate.
	Clone() Object
}

// FlattenedCol is one denormalized column of a flattened table (paper
// §2.1): at load time its value is looked up from a dimension table by
// joining FactKey to the dimension's DimKey; RefreshColumns recomputes it
// when the dimension changes.
type FlattenedCol struct {
	Column   string `json:"column"`
	DimTable string `json:"dimTable"`
	DimValue string `json:"dimValue"`
	FactKey  string `json:"factKey"`
	DimKey   string `json:"dimKey"`
}

// Table is a global object describing a relational table.
type Table struct {
	OID           OID          `json:"oid"`
	Name          string       `json:"name"`
	Columns       types.Schema `json:"columns"`
	PartitionExpr string       `json:"partitionExpr,omitempty"`
	// Flattened lists columns denormalized from dimension tables at load
	// time (§2.1).
	Flattened []FlattenedCol `json:"flattened,omitempty"`
}

// GetOID implements Object.
func (t *Table) GetOID() OID { return t.OID }

// Kind implements Object.
func (t *Table) Kind() Kind { return KindTable }

// Shard implements Object.
func (t *Table) Shard() int { return GlobalShard }

// Clone implements Object.
func (t *Table) Clone() Object {
	c := *t
	c.Columns = append(types.Schema(nil), t.Columns...)
	c.Flattened = append([]FlattenedCol(nil), t.Flattened...)
	return &c
}

// LiveAgg is one maintained aggregate of a live aggregate projection
// (paper §2.1): Op is one of "sum", "count", "countstar", "min", "max";
// Col is the aggregated base-table column ("" for countstar); Name is
// the projection column storing the partial value.
type LiveAgg struct {
	Op   string `json:"op"`
	Col  string `json:"col,omitempty"`
	Name string `json:"name"`
}

// Projection is a global object: a sorted, segmented physical organization
// of a subset of a table's columns (paper §2.1, §2.2). A projection with
// LiveAggs is a live aggregate projection: it stores pre-computed partial
// aggregates grouped by its plain columns, trading update restrictions on
// the base table for dramatically faster aggregation queries.
type Projection struct {
	OID      OID      `json:"oid"`
	TableOID OID      `json:"tableOid"`
	Name     string   `json:"name"`
	Columns  []string `json:"columns"`
	SortKey  []string `json:"sortKey"`
	// SegmentCols is the SEGMENTED BY HASH(...) column list; empty means
	// the projection is replicated on all nodes.
	SegmentCols []string `json:"segmentCols,omitempty"`
	// BuddyOffset rotates the Enterprise-mode node ring for this
	// projection (0 for the base copy, >0 for buddies). Eon ignores it.
	BuddyOffset int `json:"buddyOffset,omitempty"`
	// BaseOID links a buddy to its base projection (0 for the base).
	BaseOID OID `json:"baseOid,omitempty"`
	// LiveAggs, when non-empty, marks a live aggregate projection whose
	// group keys are Columns and whose physical schema is LiveSchema.
	LiveAggs []LiveAgg `json:"liveAggs,omitempty"`
	// LiveSchema is the physical column schema of a live aggregate
	// projection: the group columns followed by the aggregate columns.
	LiveSchema types.Schema `json:"liveSchema,omitempty"`
}

// IsLiveAggregate reports whether the projection maintains aggregates.
func (p *Projection) IsLiveAggregate() bool { return len(p.LiveAggs) > 0 }

// GetOID implements Object.
func (p *Projection) GetOID() OID { return p.OID }

// Kind implements Object.
func (p *Projection) Kind() Kind { return KindProjection }

// Shard implements Object.
func (p *Projection) Shard() int { return GlobalShard }

// Replicated reports whether the projection stores a full copy on every
// node.
func (p *Projection) Replicated() bool { return len(p.SegmentCols) == 0 }

// Clone implements Object.
func (p *Projection) Clone() Object {
	c := *p
	c.Columns = append([]string(nil), p.Columns...)
	c.SortKey = append([]string(nil), p.SortKey...)
	c.SegmentCols = append([]string(nil), p.SegmentCols...)
	c.LiveAggs = append([]LiveAgg(nil), p.LiveAggs...)
	c.LiveSchema = append(types.Schema(nil), p.LiveSchema...)
	return &c
}

// ShardKind distinguishes segment shards from the replica shard.
type ShardKind uint8

// Shard kinds.
const (
	SegmentShard ShardKind = iota
	ReplicaShardKind
)

// Shard is a global object describing one region of the hash space
// (paper §3.1, Figure 3). The shard count is fixed at database creation.
type Shard struct {
	OID       OID       `json:"oid"`
	Index     int       `json:"index"`
	ShardKind ShardKind `json:"kind"`
	Lo        uint64    `json:"lo"`
	Hi        uint64    `json:"hi"`
}

// GetOID implements Object.
func (s *Shard) GetOID() OID { return s.OID }

// Kind implements Object.
func (s *Shard) Kind() Kind { return KindShard }

// Shard implements Object.
func (s *Shard) Shard() int { return GlobalShard }

// Clone implements Object.
func (s *Shard) Clone() Object { c := *s; return &c }

// SubState is the lifecycle state of a shard subscription (paper §3.3,
// Figure 4).
type SubState uint8

// Subscription states.
const (
	SubPending SubState = iota
	SubPassive
	SubActive
	SubRemoving
)

// String names the state.
func (s SubState) String() string {
	switch s {
	case SubPending:
		return "PENDING"
	case SubPassive:
		return "PASSIVE"
	case SubActive:
		return "ACTIVE"
	case SubRemoving:
		return "REMOVING"
	}
	return "?"
}

// Subscription is a global object recording that a node serves a shard.
type Subscription struct {
	OID        OID      `json:"oid"`
	Node       string   `json:"node"`
	ShardIndex int      `json:"shardIndex"`
	State      SubState `json:"state"`
}

// GetOID implements Object.
func (s *Subscription) GetOID() OID { return s.OID }

// Kind implements Object.
func (s *Subscription) Kind() Kind { return KindSubscription }

// Shard implements Object.
func (s *Subscription) Shard() int { return GlobalShard }

// Clone implements Object.
func (s *Subscription) Clone() Object { c := *s; return &c }

// Node is a global object describing a cluster member.
type Node struct {
	OID        OID    `json:"oid"`
	Name       string `json:"name"`
	Subcluster string `json:"subcluster,omitempty"`
	// Spare marks a warm standby: the node participates in the commit
	// fan-out and holds PASSIVE subscriptions on every shard so its depot
	// stays warm, but it serves no queries and owns no writes until a
	// reconciler promotes it into a subcluster (subscription flip, not a
	// cold revive).
	Spare bool `json:"spare,omitempty"`
}

// GetOID implements Object.
func (n *Node) GetOID() OID { return n.OID }

// Kind implements Object.
func (n *Node) Kind() Kind { return KindNode }

// Shard implements Object.
func (n *Node) Shard() int { return GlobalShard }

// Clone implements Object.
func (n *Node) Clone() Object { c := *n; return &c }

// FileRef locates one immutable data file in a storage namespace.
type FileRef struct {
	Path string `json:"path"`
	Size int64  `json:"size"`
}

// StorageContainer is a shard-scoped storage object describing one ROS
// container: a set of column files holding RowCount complete tuples
// sorted by the projection's sort order (paper §2.3).
type StorageContainer struct {
	OID      OID `json:"oid"`
	ProjOID  OID `json:"projOid"`
	TableOID OID `json:"tableOid"`
	// ShardIndex is the segment shard whose hash region contains every
	// tuple of the container, or ReplicaShard for replicated projections.
	ShardIndex int   `json:"shardIndex"`
	RowCount   int64 `json:"rowCount"`
	SizeBytes  int64 `json:"sizeBytes"`
	// Files maps column name to its data file. When Bundle is set the
	// columns are concatenated into that single file instead.
	Files  map[string]FileRef `json:"files,omitempty"`
	Bundle FileRef            `json:"bundle,omitempty"`
	// ColStats carries per-column min/max for partition and predicate
	// pruning without opening the files.
	ColStats map[string]types.ColumnStats `json:"colStats,omitempty"`
	// PartitionKey is the table-partition value all tuples share, "" if
	// the table is unpartitioned.
	PartitionKey string `json:"partitionKey,omitempty"`
	// OwnerNode is the Enterprise-mode owner ("" in Eon, where storage
	// is not tied to a node).
	OwnerNode string `json:"ownerNode,omitempty"`
	// CreateVersion is the catalog version at which the container was
	// committed; used by mergeout purge and file GC ordering.
	CreateVersion uint64 `json:"createVersion,omitempty"`
}

// GetOID implements Object.
func (s *StorageContainer) GetOID() OID { return s.OID }

// Kind implements Object.
func (s *StorageContainer) Kind() Kind { return KindStorageContainer }

// Shard implements Object.
func (s *StorageContainer) Shard() int { return s.ShardIndex }

// Clone implements Object.
func (s *StorageContainer) Clone() Object {
	c := *s
	c.Files = make(map[string]FileRef, len(s.Files))
	for k, v := range s.Files {
		c.Files[k] = v
	}
	c.ColStats = make(map[string]types.ColumnStats, len(s.ColStats))
	for k, v := range s.ColStats {
		c.ColStats[k] = v
	}
	return &c
}

// AllFiles returns every file referenced by the container.
func (s *StorageContainer) AllFiles() []FileRef {
	if s.Bundle.Path != "" {
		return []FileRef{s.Bundle}
	}
	out := make([]FileRef, 0, len(s.Files))
	for _, f := range s.Files {
		out = append(out, f)
	}
	return out
}

// DeleteVector is a shard-scoped storage object marking deleted tuple
// positions of one container (paper §2.3: a tombstone-like mechanism
// stored in the same format as regular columns).
type DeleteVector struct {
	OID          OID     `json:"oid"`
	ContainerOID OID     `json:"containerOid"`
	ProjOID      OID     `json:"projOid"`
	ShardIndex   int     `json:"shardIndex"`
	File         FileRef `json:"file"`
	// Count is the number of deleted positions.
	Count     int64  `json:"count"`
	OwnerNode string `json:"ownerNode,omitempty"`
}

// GetOID implements Object.
func (d *DeleteVector) GetOID() OID { return d.OID }

// Kind implements Object.
func (d *DeleteVector) Kind() Kind { return KindDeleteVector }

// Shard implements Object.
func (d *DeleteVector) Shard() int { return d.ShardIndex }

// Clone implements Object.
func (d *DeleteVector) Clone() Object { c := *d; return &c }

// marshalObject wraps an object with its kind for persistence.
func marshalObject(o Object) (json.RawMessage, error) {
	return json.Marshal(o)
}

// unmarshalObject reconstructs an object of the given kind.
func unmarshalObject(k Kind, raw json.RawMessage) (Object, error) {
	var o Object
	switch k {
	case KindTable:
		o = &Table{}
	case KindProjection:
		o = &Projection{}
	case KindShard:
		o = &Shard{}
	case KindSubscription:
		o = &Subscription{}
	case KindNode:
		o = &Node{}
	case KindStorageContainer:
		o = &StorageContainer{}
	case KindDeleteVector:
		o = &DeleteVector{}
	default:
		return nil, fmt.Errorf("catalog: unknown object kind %d", k)
	}
	if err := json.Unmarshal(raw, o); err != nil {
		return nil, fmt.Errorf("catalog: decode %v: %w", k, err)
	}
	return o, nil
}
