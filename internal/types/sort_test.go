package types

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func sortTestBatch(xs []int64) *Batch {
	s := Schema{{Name: "k", Type: Int64}, {Name: "pos", Type: Int64}}
	b := NewBatch(s, len(xs))
	for i, x := range xs {
		b.AppendRow(Row{NewInt(x), NewInt(int64(i))})
	}
	return b
}

func TestSortBatchOrders(t *testing.T) {
	b := SortBatch(sortTestBatch([]int64{3, 1, 2}), []int{0})
	if b.Cols[0].Ints[0] != 1 || b.Cols[0].Ints[2] != 3 {
		t.Errorf("sorted = %v", b.Cols[0].Ints)
	}
}

func TestSortBatchStable(t *testing.T) {
	// Equal keys preserve input order (stable).
	b := SortBatch(sortTestBatch([]int64{2, 1, 2, 1}), []int{0})
	pos := b.Cols[1].Ints
	if pos[0] != 1 || pos[1] != 3 || pos[2] != 0 || pos[3] != 2 {
		t.Errorf("stable order = %v", pos)
	}
}

func TestSortBatchAlreadySortedNoCopy(t *testing.T) {
	b := sortTestBatch([]int64{1, 2, 3})
	if got := SortBatch(b, []int{0}); got != b {
		t.Error("in-order batch should be returned as-is")
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted(sortTestBatch([]int64{1, 2, 2, 3}), []int{0}) {
		t.Error("sorted reported unsorted")
	}
	if IsSorted(sortTestBatch([]int64{2, 1}), []int{0}) {
		t.Error("unsorted reported sorted")
	}
	// Multi-key: first key ties broken by second.
	s := Schema{{Name: "a", Type: Int64}, {Name: "b", Type: Int64}}
	b := BatchFromRows(s, []Row{
		{NewInt(1), NewInt(2)}, {NewInt(1), NewInt(1)},
	})
	if IsSorted(b, []int{0, 1}) {
		t.Error("secondary key violation missed")
	}
	if !IsSorted(b, []int{0}) {
		t.Error("primary-only should be sorted")
	}
}

// Property: SortBatch output is sorted and is a permutation of the input.
func TestQuickSortBatch(t *testing.T) {
	f := func(xs []int64) bool {
		b := SortBatch(sortTestBatch(xs), []int{0})
		if !IsSorted(b, []int{0}) {
			return false
		}
		counts := map[int64]int{}
		for _, x := range xs {
			counts[x]++
		}
		for _, x := range b.Cols[0].Ints {
			counts[x]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDatumTimestampString(t *testing.T) {
	ts := time.Date(2018, 6, 10, 12, 34, 56, 0, time.UTC)
	d := NewTimestamp(ts.UnixMicro())
	if got := d.String(); got != "2018-06-10 12:34:56" {
		t.Errorf("timestamp string = %q", got)
	}
}

func TestDateFromTime(t *testing.T) {
	d := DateFromTime(time.Date(1970, 1, 2, 23, 0, 0, 0, time.UTC))
	if d.I != 1 {
		t.Errorf("days = %d", d.I)
	}
}

func TestRowClone(t *testing.T) {
	r := Row{NewInt(1), NewString("a")}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].I != 1 {
		t.Error("clone aliases original")
	}
	if r.String() != "1|a" {
		t.Errorf("row string = %q", r.String())
	}
}

func TestSchemaString(t *testing.T) {
	s := Schema{{Name: "a", Type: Int64}, {Name: "b", Type: Varchar}}
	if got := s.String(); got != "a INTEGER, b VARCHAR" {
		t.Errorf("schema string = %q", got)
	}
}

func TestBatchFromRowsArityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch should panic")
		}
	}()
	s := Schema{{Name: "a", Type: Int64}}
	b := NewBatch(s, 1)
	b.AppendRow(Row{NewInt(1), NewInt(2)})
}

func TestVectorDatumAllPhysicalClasses(t *testing.T) {
	checks := []struct {
		typ Type
		d   Datum
	}{
		{Int64, NewInt(7)},
		{Float64, NewFloat(1.5)},
		{Varchar, NewString("x")},
		{Bool, NewBool(true)},
	}
	for _, c := range checks {
		v := NewVector(c.typ, 1)
		v.Append(c.d)
		got := v.Datum(0)
		if got.Compare(c.d) != 0 {
			t.Errorf("%v roundtrip = %v", c.typ, got)
		}
	}
}

func TestSortPermLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]int64, 500)
	for i := range xs {
		xs[i] = rng.Int63n(50)
	}
	perm := SortPerm(sortTestBatch(xs), []int{0})
	if len(perm) != 500 {
		t.Fatal("perm length")
	}
	seen := map[int]bool{}
	for _, p := range perm {
		if seen[p] {
			t.Fatal("perm repeats index")
		}
		seen[p] = true
	}
}
