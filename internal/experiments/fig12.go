package experiments

import (
	"sync"
	"sync/atomic"
	"time"

	"eon/internal/core"
	"eon/internal/workload"
)

// Fig12Result is the throughput trace of Figure 12: queries completed
// per sampling window, with one node killed partway through.
type Fig12Result struct {
	Label string
	// WindowCounts[i] is the number of queries completed in window i.
	WindowCounts []int
	// KillWindow is the window index at whose start the node was killed.
	KillWindow int
}

// Fig12Options tunes the node-down throughput experiment.
type Fig12Options struct {
	Scale      float64
	Threads    int
	Window     time.Duration
	NumWindows int
	KillWindow int
	// Mode selects Eon (4 nodes, 3 shards — the paper's smooth case) or
	// Enterprise (4 nodes — the cliff comparison).
	Mode core.Mode
}

// Fig12 reproduces Figure 12: a steady stream of TPC-H-style queries
// against a 4-node cluster, killing one node mid-run. Eon's sharding
// yields a non-cliff degradation; Enterprise's buddy takeover overloads
// one node.
func Fig12(opts Fig12Options) (*Fig12Result, error) {
	if opts.Scale <= 0 {
		opts.Scale = 0.02
	}
	if opts.Threads <= 0 {
		opts.Threads = 8
	}
	if opts.Window <= 0 {
		opts.Window = 500 * time.Millisecond
	}
	if opts.NumWindows <= 0 {
		opts.NumWindows = 8
	}
	if opts.KillWindow <= 0 {
		opts.KillWindow = opts.NumWindows / 2
	}

	var db *core.DB
	var err error
	label := ""
	if opts.Mode == core.ModeEon {
		// 4 nodes, 3 shards, every node subscribed to every shard.
		db, _, err = newEonDB(4, 3, 4, throughputCosts())
		label = "Eon 4 node 3 shard"
	} else {
		db, err = newEnterpriseDB(4, throughputCosts())
		label = "Enterprise 4 node"
	}
	if err != nil {
		return nil, err
	}
	if err := loadTPCH(db, opts.Scale); err != nil {
		return nil, err
	}
	// Warm caches.
	if _, err := db.NewSession().Query(workload.NodeDownQuery); err != nil {
		return nil, err
	}

	res := &Fig12Result{Label: label, KillWindow: opts.KillWindow}
	var completed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < opts.Threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.NewSession().Query(workload.NodeDownQuery); err == nil {
					completed.Add(1)
				}
			}
		}()
	}

	prev := int64(0)
	for w := 0; w < opts.NumWindows; w++ {
		if w == opts.KillWindow {
			if err := db.KillNode("node4"); err != nil {
				close(stop)
				wg.Wait()
				return nil, err
			}
		}
		time.Sleep(opts.Window)
		cur := completed.Load()
		res.WindowCounts = append(res.WindowCounts, int(cur-prev))
		prev = cur
	}
	close(stop)
	wg.Wait()
	return res, nil
}

// BeforeAfter summarizes a Fig12 trace: mean window throughput before
// and after the kill.
func (r *Fig12Result) BeforeAfter() (before, after float64) {
	var b, a, bn, an int
	for i, c := range r.WindowCounts {
		if i < r.KillWindow {
			b += c
			bn++
		} else if i > r.KillWindow { // skip the transition window
			a += c
			an++
		}
	}
	if bn > 0 {
		before = float64(b) / float64(bn)
	}
	if an > 0 {
		after = float64(a) / float64(an)
	}
	return before, after
}
