//go:build race

package obs

// RaceEnabled reports whether the race detector is compiled in. The
// disabled-tracer zero-allocation test is skipped under -race because
// instrumentation itself allocates.
const RaceEnabled = true
