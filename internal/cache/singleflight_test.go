package cache

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eon/internal/udfs"
)

// blockingFS wraps a FileSystem and lets a test hold WriteFile calls
// open (gate) or fail them (failWrites), while counting ReadFile calls
// per path.
type blockingFS struct {
	udfs.FileSystem
	gate       chan struct{} // if non-nil, WriteFile blocks until closed
	entered    chan struct{} // signaled once a WriteFile is in progress
	failWrites atomic.Bool

	mu    sync.Mutex
	reads map[string]int
}

func newBlockingFS() *blockingFS {
	return &blockingFS{FileSystem: udfs.NewMemFS(), reads: map[string]int{}}
}

func (b *blockingFS) WriteFile(ctx context.Context, path string, data []byte) error {
	if b.entered != nil {
		select {
		case b.entered <- struct{}{}:
		default:
		}
	}
	if b.gate != nil {
		<-b.gate
	}
	if b.failWrites.Load() {
		return errors.New("disk full")
	}
	return b.FileSystem.WriteFile(ctx, path, data)
}

func (b *blockingFS) ReadFile(ctx context.Context, path string) ([]byte, error) {
	b.mu.Lock()
	b.reads[path]++
	b.mu.Unlock()
	return b.FileSystem.ReadFile(ctx, path)
}

func (b *blockingFS) readCount(path string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.reads[path]
}

// N concurrent misses on one path must issue exactly one shared-storage
// fetch; the rest coalesce onto it.
func TestSingleFlightCoalescesConcurrentMisses(t *testing.T) {
	ctx := context.Background()
	c := newTestCache(1 << 20)

	const waiters = 8
	var fetches atomic.Int64
	release := make(chan struct{})
	fetch := func(ctx context.Context, path string) ([]byte, error) {
		fetches.Add(1)
		<-release // hold the fetch open so every goroutine arrives mid-flight
		return []byte("payload"), nil
	}

	var wg sync.WaitGroup
	results := make([][]byte, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Get(ctx, "f", fetch, false)
		}(i)
	}
	// Wait until every goroutine has registered (1 leader + 7 coalesced),
	// then let the single fetch complete.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := c.Stats()
		if s.Misses == waiters {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines stuck: stats=%+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i := 0; i < waiters; i++ {
		if errs[i] != nil || !bytes.Equal(results[i], []byte("payload")) {
			t.Fatalf("waiter %d: %q, %v", i, results[i], errs[i])
		}
	}
	if n := fetches.Load(); n != 1 {
		t.Errorf("issued %d fetches for one path, want 1", n)
	}
	st := c.Stats()
	if st.CoalescedFetches != waiters-1 {
		t.Errorf("CoalescedFetches = %d, want %d", st.CoalescedFetches, waiters-1)
	}
	if !c.Contains("f") {
		t.Error("file not admitted after coalesced fetch")
	}
}

// A failed leading fetch must not poison the waiters: each falls back to
// its own fetch.
func TestSingleFlightLeaderFailureFallsBack(t *testing.T) {
	ctx := context.Background()
	c := newTestCache(1 << 20)

	var calls atomic.Int64
	release := make(chan struct{})
	fetch := func(ctx context.Context, path string) ([]byte, error) {
		n := calls.Add(1)
		if n == 1 {
			<-release
			return nil, errors.New("transient")
		}
		return []byte("ok"), nil
	}

	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.Get(ctx, "f", fetch, false)
		leaderErr <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Misses == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never registered")
		}
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	var data []byte
	var err error
	go func() {
		data, err = c.Get(ctx, "f", fetch, false)
		close(done)
	}()
	for c.Stats().CoalescedFetches == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	<-done
	if err != nil || string(data) != "ok" {
		t.Fatalf("waiter fallback = %q, %v", data, err)
	}
	if e := <-leaderErr; e == nil {
		t.Fatal("leader should have failed")
	}
}

// Regression for the admit ordering bug: the map entry must not be
// visible while the file write is still in progress, so a concurrent Get
// never takes the read-fail-refetch path against a half-admitted file.
func TestAdmitPublishesEntryOnlyAfterWrite(t *testing.T) {
	ctx := context.Background()
	fs := newBlockingFS()
	fs.gate = make(chan struct{})
	fs.entered = make(chan struct{}, 1)
	c := New(fs, "cache", 1<<20)

	putDone := make(chan error, 1)
	go func() { putDone <- c.Put(ctx, "f", []byte("data")) }()
	<-fs.entered // the admit's WriteFile is now in progress

	if c.Contains("f") {
		t.Fatal("entry visible before the file write completed")
	}
	// A Get during the pending write must go to the fetcher, not to a
	// ReadFile of the not-yet-written local file.
	f := &countingFetcher{data: map[string][]byte{"f": []byte("data")}}
	got, err := c.Get(ctx, "f", f.fetch, false)
	if err != nil || string(got) != "data" {
		t.Fatalf("get during pending admit = %q, %v", got, err)
	}
	if f.calls != 1 {
		t.Fatalf("fetcher calls = %d, want 1", f.calls)
	}
	if n := fs.readCount("cache/f"); n != 0 {
		t.Fatalf("Get read the half-admitted local file %d times", n)
	}

	close(fs.gate)
	if err := <-putDone; err != nil {
		t.Fatalf("put: %v", err)
	}
	if !c.Contains("f") {
		t.Fatal("entry not published after the write completed")
	}
	if _, err := c.Get(ctx, "f", f.fetch, false); err != nil {
		t.Fatal(err)
	}
	if f.calls != 1 {
		t.Fatalf("post-admit Get refetched (calls=%d)", f.calls)
	}
}

// A failed write must leave no entry and no leaked byte reservation.
func TestAdmitWriteFailureRollsBack(t *testing.T) {
	ctx := context.Background()
	fs := newBlockingFS()
	fs.failWrites.Store(true)
	c := New(fs, "cache", 100)

	if err := c.Put(ctx, "f", []byte("0123456789")); err == nil {
		t.Fatal("put should fail when the write fails")
	}
	if c.Contains("f") {
		t.Fatal("failed admit left an entry")
	}
	if st := c.Stats(); st.BytesCached != 0 {
		t.Fatalf("leaked reservation: %d bytes cached", st.BytesCached)
	}
	// With writes healthy again the same file admits normally.
	fs.failWrites.Store(false)
	if err := c.Put(ctx, "f", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if !c.Contains("f") {
		t.Fatal("re-admit after failure did not succeed")
	}
}

// Clear during a pending admit abandons the admission instead of
// resurrecting the entry afterwards.
func TestClearDuringPendingAdmit(t *testing.T) {
	ctx := context.Background()
	fs := newBlockingFS()
	fs.gate = make(chan struct{})
	fs.entered = make(chan struct{}, 1)
	c := New(fs, "cache", 1<<20)

	putDone := make(chan error, 1)
	go func() { putDone <- c.Put(ctx, "f", []byte("data")) }()
	<-fs.entered
	c.Clear(ctx)
	close(fs.gate)
	<-putDone

	if c.Contains("f") {
		t.Fatal("cleared cache resurrected a pending admission")
	}
	if st := c.Stats(); st.BytesCached != 0 {
		t.Fatalf("byte accounting off after clear: %d", st.BytesCached)
	}
	// The path stays admissible.
	if err := c.Put(ctx, "f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if !c.Contains("f") {
		t.Fatal("re-admit after clear failed")
	}
}

// Warm with a concurrent fetch pool preserves the deterministic MRU
// admission order.
func TestWarmParallelPreservesOrder(t *testing.T) {
	ctx := context.Background()
	peer := newTestCache(1 << 20)
	var paths []string
	for _, p := range []string{"e", "d", "c", "b", "a"} { // admit a last => MRU front
		if err := peer.Put(ctx, p, []byte(p+p)); err != nil {
			t.Fatal(err)
		}
	}
	paths = peer.MostRecentlyUsed(1 << 20)

	n := newTestCache(1 << 20)
	warmed := n.Warm(ctx, paths, func(ctx context.Context, path string) ([]byte, error) {
		time.Sleep(time.Duration(len(path)) * time.Microsecond)
		data, ok := peer.ReadCached(ctx, path)
		if !ok {
			return nil, errors.New("miss")
		}
		return data, nil
	}, 4)
	if warmed != 5 {
		t.Fatalf("warmed %d of 5", warmed)
	}
	got := n.MostRecentlyUsed(1 << 20)
	for i := range paths {
		if got[i] != paths[i] {
			t.Fatalf("MRU order after parallel warm = %v, want %v", got, paths)
		}
	}
}
