package expr

import (
	"strings"
	"testing"

	"eon/internal/types"
)

func TestExprStringRendering(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Bin(OpAdd, Col("a"), IntLit(1)), "(a + 1)"},
		{Bin(OpNe, Col("a"), StrLit("x")), "(a <> 'x')"},
		{&Unary{Op: OpNot, E: Col("ok")}, "NOT ok"},
		{&IsNull{E: Col("a")}, "a IS NULL"},
		{&IsNull{E: Col("a"), Negate: true}, "a IS NOT NULL"},
		{&In{E: Col("a"), List: []Expr{IntLit(1), IntLit(2)}}, "a IN (1, 2)"},
		{&In{E: Col("a"), List: []Expr{IntLit(1)}, Negate: true}, "a NOT IN (1)"},
		{&Like{E: Col("s"), Pattern: "x%"}, "s LIKE 'x%'"},
		{&Like{E: Col("s"), Pattern: "x%", Negate: true}, "s NOT LIKE 'x%'"},
		{&Func{Name: "ABS", Args: []Expr{Col("a")}}, "ABS(a)"},
		{&Case{Whens: []When{{Cond: Col("c"), Then: IntLit(1)}}, Else: IntLit(0)},
			"CASE WHEN c THEN 1 ELSE 0 END"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	// Operator spellings.
	ops := map[Op]string{
		OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
		OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
		OpAnd: "AND", OpOr: "OR", OpNot: "NOT",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%v.String() = %q", op, op.String())
		}
	}
}

func TestCloneIndependentBinding(t *testing.T) {
	orig := Bin(OpAnd,
		Bin(OpGt, Col("id"), IntLit(1)),
		&In{E: Col("name"), List: []Expr{StrLit("a")}})
	cp := Clone(orig)

	s1 := types.Schema{{Name: "id", Type: types.Int64}, {Name: "name", Type: types.Varchar}}
	s2 := types.Schema{{Name: "name", Type: types.Varchar}, {Name: "id", Type: types.Int64}}
	if err := Bind(orig, s1); err != nil {
		t.Fatal(err)
	}
	if err := Bind(cp, s2); err != nil {
		t.Fatal(err)
	}
	// Bindings must not alias: the same column binds to different
	// positions in each copy.
	origID := orig.L.(*Binary).L.(*ColumnRef)
	cpID := cp.(*Binary).L.(*Binary).L.(*ColumnRef)
	if origID.Index != 0 || cpID.Index != 1 {
		t.Errorf("indices: orig=%d cp=%d", origID.Index, cpID.Index)
	}
}

func TestCloneAllNodeKinds(t *testing.T) {
	e := &Case{
		Whens: []When{{
			Cond: &Unary{Op: OpNot, E: &IsNull{E: Col("a")}},
			Then: &Func{Name: "ABS", Args: []Expr{Col("a")}},
		}},
		Else: &Like{E: Col("s"), Pattern: "%"},
	}
	cp := Clone(e).(*Case)
	if cp == e || cp.Whens[0].Cond == e.Whens[0].Cond {
		t.Error("clone must allocate new nodes")
	}
	if cp.String() != e.String() {
		t.Errorf("clone differs: %s vs %s", cp.String(), e.String())
	}
}

func TestColumnsOnAllNodeKinds(t *testing.T) {
	schema := types.Schema{
		{Name: "a", Type: types.Int64},
		{Name: "b", Type: types.Int64},
		{Name: "s", Type: types.Varchar},
	}
	e := &Case{
		Whens: []When{{
			Cond: &In{E: Col("a"), List: []Expr{Col("b")}},
			Then: &Func{Name: "LENGTH", Args: []Expr{Col("s")}},
		}},
		Else: &Unary{Op: OpNeg, E: Col("b")},
	}
	if err := Bind(e, schema); err != nil {
		t.Fatal(err)
	}
	cols := Columns(e)
	if len(cols) != 3 {
		t.Errorf("columns = %v", cols)
	}
	names := ColumnNames(e)
	if strings.Join(names, ",") != "a,b,s" {
		t.Errorf("names = %v", names)
	}
}

func TestBindErrors(t *testing.T) {
	schema := types.Schema{{Name: "a", Type: types.Int64}}
	bad := []Expr{
		Col("zz"),
		Bin(OpAdd, Col("a"), Col("zz")),
		&Func{Name: "NOSUCHFN", Args: []Expr{Col("a")}},
		&Func{Name: "COALESCE"},
		&In{E: Col("zz"), List: []Expr{IntLit(1)}},
		&Like{E: Col("zz"), Pattern: "%"},
	}
	for _, e := range bad {
		if err := Bind(e, schema); err == nil {
			t.Errorf("Bind(%s) should fail", e)
		}
	}
}

func TestEvalNeg(t *testing.T) {
	schema := types.Schema{{Name: "a", Type: types.Int64}, {Name: "f", Type: types.Float64}}
	row := types.Row{types.NewInt(5), types.NewFloat(2.5)}
	e := &Unary{Op: OpNeg, E: Col("a")}
	if err := Bind(e, schema); err != nil {
		t.Fatal(err)
	}
	v, _ := EvalRow(e, row)
	if v.I != -5 {
		t.Errorf("-a = %v", v)
	}
	ef := &Unary{Op: OpNeg, E: Col("f")}
	Bind(ef, schema)
	v, _ = EvalRow(ef, row)
	if v.F != -2.5 {
		t.Errorf("-f = %v", v)
	}
	// NEG of NULL is NULL.
	en := &Unary{Op: OpNeg, E: Lit(types.NullDatum(types.Int64))}
	Bind(en, nil)
	v, _ = EvalRow(en, nil)
	if !v.Null {
		t.Errorf("-NULL = %v", v)
	}
}

func TestEvalModAndIntDivByZero(t *testing.T) {
	e := Bin(OpMod, IntLit(7), IntLit(0))
	Bind(e, nil)
	v, _ := EvalRow(e, nil)
	if !v.Null {
		t.Errorf("7 %% 0 = %v, want NULL", v)
	}
}

func TestEvalCrossTypeStringCompare(t *testing.T) {
	// Comparing string to int falls back to string comparison of
	// renderings (documented engine behaviour, not SQL standard).
	e := Bin(OpEq, StrLit("5"), IntLit(5))
	Bind(e, nil)
	v, _ := EvalRow(e, nil)
	if v.Null {
		t.Error("cross-type compare should not be NULL")
	}
}

func TestExtractEpochHour(t *testing.T) {
	// 2018-06-10 13:00:00 UTC
	ts := types.NewTimestamp((int64(17692)*86400 + 13*3600) * 1e6)
	e := &Func{Name: "EXTRACT", Args: []Expr{StrLit("hour"), Lit(ts)}}
	Bind(e, nil)
	v, err := EvalRow(e, nil)
	if err != nil || v.I != 13 {
		t.Errorf("hour = %v, %v", v, err)
	}
	e2 := &Func{Name: "EXTRACT", Args: []Expr{StrLit("epoch"), Lit(ts)}}
	Bind(e2, nil)
	v, _ = EvalRow(e2, nil)
	if v.I != int64(17692)*86400+13*3600 {
		t.Errorf("epoch = %v", v)
	}
	e3 := &Func{Name: "EXTRACT", Args: []Expr{StrLit("bogus"), Lit(ts)}}
	Bind(e3, nil)
	if _, err := EvalRow(e3, nil); err == nil {
		t.Error("unknown field should error")
	}
}

func TestFlipOpAll(t *testing.T) {
	stats := func(col int) (ColumnStats, bool) {
		return ColumnStats{Min: types.NewInt(10), Max: types.NewInt(20)}, true
	}
	schema := types.Schema{{Name: "a", Type: types.Int64}}
	// literal <= col: flips to col >= literal.
	cases := []struct {
		e    Expr
		want bool
	}{
		{Bin(OpLe, IntLit(25), Col("a")), false}, // a >= 25 impossible
		{Bin(OpGe, IntLit(15), Col("a")), true},  // a <= 15 possible
		{Bin(OpEq, IntLit(12), Col("a")), true},
		{Bin(OpNe, IntLit(12), Col("a")), true},
	}
	for _, c := range cases {
		if err := Bind(c.e, schema); err != nil {
			t.Fatal(err)
		}
		if got := CouldMatch(c.e, stats); got != c.want {
			t.Errorf("CouldMatch(%s) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestCouldMatchCaseAndFunctionsConservative(t *testing.T) {
	schema := types.Schema{{Name: "a", Type: types.Int64}}
	stats := func(col int) (ColumnStats, bool) {
		return ColumnStats{Min: types.NewInt(0), Max: types.NewInt(1)}, true
	}
	e := &Case{Whens: []When{{Cond: Bin(OpGt, Col("a"), IntLit(100)), Then: Lit(types.NewBool(true))}}}
	if err := Bind(e, schema); err != nil {
		t.Fatal(err)
	}
	if !CouldMatch(e, stats) {
		t.Error("CASE must be conservative")
	}
}

func TestEvalBatchErrorPropagates(t *testing.T) {
	schema := types.Schema{{Name: "a", Type: types.Int64}}
	b := types.BatchFromRows(schema, []types.Row{{types.NewInt(1)}})
	unbound := Col("a") // never bound: Index -1
	if _, err := EvalBatch(unbound, b); err == nil {
		t.Error("unbound column should error")
	}
	if _, err := FilterBatch(unbound, b); err == nil {
		t.Error("unbound filter should error")
	}
}
