package resilience

import (
	"context"
	"fmt"
	"time"
)

// ObjectStore is the object-store shape the resilient wrapper covers. It
// is generic over the listing Info type so this package needs no import
// of the concrete store package; objstore.Store satisfies
// ObjectStore[objstore.Info].
type ObjectStore[I any] interface {
	Put(ctx context.Context, key string, data []byte) error
	Get(ctx context.Context, key string) ([]byte, error)
	GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error)
	List(ctx context.Context, prefix string) ([]I, error)
	Delete(ctx context.Context, key string) error
}

// Config tunes a resilient store wrapper.
type Config struct {
	// Policy is the retry policy applied to every operation.
	Policy Policy
	// HedgeDelay launches a backup Get/GetRange after this delay, taking
	// the first success (PushdownDB-style tail absorption). 0 disables
	// hedging.
	HedgeDelay time.Duration
	// Breaker guards the store against retry storms.
	Breaker BreakerConfig
	// Seed derives deterministic jitter and probe randomness.
	Seed int64
}

// DefaultConfig returns the shared-storage defaults: 4 attempts with
// 2ms..250ms full-jitter backoff, a 2s per-attempt budget, 25ms hedge
// delay, and a breaker tripping at a 50% failure rate over 20 requests.
func DefaultConfig(retryable func(error) bool) Config {
	p := DefaultPolicy(retryable)
	p.OpTimeout = 2 * time.Second
	return Config{
		Policy:     p,
		HedgeDelay: 25 * time.Millisecond,
	}
}

// Store wraps an ObjectStore with retry, hedging and a circuit breaker.
// All methods are safe for concurrent use.
type Store[I any] struct {
	inner   ObjectStore[I]
	cfg     Config
	breaker *Breaker
	c       Counters
}

// Wrap builds a resilient wrapper around inner.
func Wrap[I any](inner ObjectStore[I], cfg Config) *Store[I] {
	cfg.Policy = cfg.Policy.withDefaults().Seeded(cfg.Seed)
	if cfg.Breaker.Seed == 0 {
		cfg.Breaker.Seed = cfg.Seed
	}
	s := &Store[I]{inner: inner, cfg: cfg}
	s.breaker = NewBreaker(cfg.Breaker, &s.c)
	return s
}

// Inner returns the wrapped store.
func (s *Store[I]) Inner() ObjectStore[I] { return s.inner }

// Stats returns a snapshot of the wrapper's resilience counters.
func (s *Store[I]) Stats() Stats { return s.c.Snapshot() }

// Counters exposes the live counters so collaborating layers (peer
// breakers, degradation fallbacks) aggregate into one snapshot.
func (s *Store[I]) Counters() *Counters { return &s.c }

// Breaker returns the store's circuit breaker.
func (s *Store[I]) Breaker() *Breaker { return s.breaker }

// do runs one operation under breaker + retry policy. The breaker is
// consulted per attempt: when it opens mid-retry-loop the remaining
// retries are shed (ErrOpen is not retryable).
func (s *Store[I]) do(ctx context.Context, op func(ctx context.Context) error) error {
	return s.cfg.Policy.Do(ctx, &s.c, func(actx context.Context) error {
		if !s.breaker.Allow() {
			return fmt.Errorf("%w", ErrOpen)
		}
		err := op(actx)
		s.breaker.Record(err != nil && s.isRetryable(err))
		return err
	})
}

func (s *Store[I]) isRetryable(err error) bool {
	return s.cfg.Policy.Retryable != nil && s.cfg.Policy.Retryable(err)
}

// Put implements ObjectStore with retries.
func (s *Store[I]) Put(ctx context.Context, key string, data []byte) error {
	return s.do(ctx, func(actx context.Context) error {
		return s.inner.Put(actx, key, data)
	})
}

// Get implements ObjectStore with hedged, retried reads.
func (s *Store[I]) Get(ctx context.Context, key string) ([]byte, error) {
	return s.hedged(ctx, func(actx context.Context) ([]byte, error) {
		return s.inner.Get(actx, key)
	})
}

// GetRange implements ObjectStore with hedged, retried reads.
func (s *Store[I]) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	return s.hedged(ctx, func(actx context.Context) ([]byte, error) {
		return s.inner.GetRange(actx, key, offset, length)
	})
}

// List implements ObjectStore with retries.
func (s *Store[I]) List(ctx context.Context, prefix string) ([]I, error) {
	var out []I
	err := s.do(ctx, func(actx context.Context) error {
		var e error
		out, e = s.inner.List(actx, prefix)
		return e
	})
	return out, err
}

// Delete implements ObjectStore with retries.
func (s *Store[I]) Delete(ctx context.Context, key string) error {
	return s.do(ctx, func(actx context.Context) error {
		return s.inner.Delete(actx, key)
	})
}

// hedged runs a read under the retry policy where each attempt is a
// hedged pair: the primary request, and after HedgeDelay a backup; the
// first success wins and the loser is canceled.
func (s *Store[I]) hedged(ctx context.Context, read func(ctx context.Context) ([]byte, error)) ([]byte, error) {
	var data []byte
	err := s.do(ctx, func(actx context.Context) error {
		var e error
		data, e = s.hedgeOnce(actx, read)
		return e
	})
	return data, err
}

// hedgeOnce issues one hedged attempt.
func (s *Store[I]) hedgeOnce(ctx context.Context, read func(ctx context.Context) ([]byte, error)) ([]byte, error) {
	if s.cfg.HedgeDelay <= 0 {
		return read(ctx)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the losing request
	type result struct {
		data   []byte
		err    error
		backup bool
	}
	ch := make(chan result, 2) // buffered: the loser must not leak
	launch := func(backup bool) {
		go func() {
			d, e := read(hctx)
			ch <- result{d, e, backup}
		}()
	}
	launch(false)
	timer := time.NewTimer(s.cfg.HedgeDelay)
	defer timer.Stop()
	outstanding := 1
	fired := false
	var firstErr error
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-timer.C:
			if !fired {
				fired = true
				outstanding++
				s.c.HedgeFired()
				launch(true)
			}
		case r := <-ch:
			outstanding--
			if r.err == nil {
				if r.backup {
					s.c.HedgeWon()
				}
				return r.data, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if !fired || outstanding == 0 {
				// Primary failed before the hedge launched, or both
				// requests failed: fail the attempt (the retry policy
				// decides what happens next).
				return nil, firstErr
			}
		}
	}
}
