package expr

import (
	"strings"
	"testing"
	"time"
)

// likeRefRec is the original recursive matcher, kept as the semantic
// reference for the compiled matcher (only exercised on short inputs
// where its exponential worst case cannot bite).
func likeRefRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRefRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

func TestLikeShapes(t *testing.T) {
	cases := []struct {
		pattern string
		shape   likeShape
	}{
		{"abc", likeExact},
		{"abc%", likePrefix},
		{"%abc", likeSuffix},
		{"%abc%", likeContains},
		{"%", likeAny},
		{"%%", likeAny},
		{"a%c", likeGeneral},
		{"a_c", likeGeneral},
		{"%a%c", likeGeneral},
		{"_", likeGeneral},
	}
	for _, c := range cases {
		if m := compileLike(c.pattern); m.shape != c.shape {
			t.Errorf("compileLike(%q).shape = %d, want %d", c.pattern, m.shape, c.shape)
		}
	}
}

func TestLikeMatchesReference(t *testing.T) {
	patterns := []string{
		"", "%", "%%", "a", "abc", "abc%", "%abc", "%abc%", "a%c", "a_c",
		"_bc", "ab_", "%a%b%", "a%b%c", "__", "%_%", "a%%b", "STEEL",
		"%STEEL%", "Brand#1_", "%%a%%b%%",
	}
	inputs := []string{
		"", "a", "b", "ab", "abc", "abcd", "aXc", "xxabcxx", "STEEL",
		"SMALL STEEL CASE", "Brand#12", "Brand#1", "aab", "abab", "aaab",
	}
	for _, p := range patterns {
		m := compileLike(p)
		for _, s := range inputs {
			got, want := m.match(s), likeRefRec(s, p)
			if got != want {
				t.Errorf("match(%q, %q) = %v, want %v", s, p, got, want)
			}
		}
	}
}

// TestLikePathological runs the %a%a%a%… pattern that made the old
// recursive matcher exponential. With the iterative walk it completes
// in well under a second even at hundreds of wildcard alternations.
func TestLikePathological(t *testing.T) {
	s := strings.Repeat("a", 2000) + "b"
	pattern := strings.Repeat("%a", 200) + "%c"
	m := compileLike(pattern)
	start := time.Now()
	if m.match(s) {
		t.Fatal("pathological pattern should not match")
	}
	if matched := m.match(strings.Repeat("a", 2000) + "c"); !matched {
		t.Fatal("pathological pattern should match trailing c")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("pathological LIKE took %v", d)
	}
}
