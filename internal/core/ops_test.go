package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"eon/internal/catalog"
	"eon/internal/objstore"
	"eon/internal/sql"
	"eon/internal/types"
)

func TestNodeDownQueriesStillWork(t *testing.T) {
	db := newTestDB(t, ModeEon, 4, 3)
	setupSales(t, db, 200)
	s := db.NewSession()
	before := mustQuery(t, s, `SELECT COUNT(*) FROM sales`).Row(t, 0)[0].I

	if err := db.KillNode("node2"); err != nil {
		t.Fatal(err)
	}
	// Shards are never down: other subscribers serve immediately (§6.1).
	after := mustQuery(t, s, `SELECT COUNT(*) FROM sales`).Row(t, 0)[0].I
	if after != before {
		t.Errorf("count with node down = %d, want %d", after, before)
	}
}

func TestEnterpriseNodeDownUsesBuddy(t *testing.T) {
	db := newTestDB(t, ModeEnterprise, 3, 3)
	setupSales(t, db, 200)
	s := db.NewSession()
	before := mustQuery(t, s, `SELECT COUNT(*) FROM sales`).Row(t, 0)[0].I

	if err := db.KillNode("node3"); err != nil {
		t.Fatal(err)
	}
	after := mustQuery(t, s, `SELECT COUNT(*) FROM sales`).Row(t, 0)[0].I
	if after != before {
		t.Errorf("buddy read count = %d, want %d", after, before)
	}
}

func TestNodeRecovery(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	setupSales(t, db, 100)
	db.KillNode("node3")

	// More data loads while the node is down.
	s := db.NewSession()
	mustExec(t, s, `INSERT INTO sales VALUES (1001, 'zeta', 9.5, 'north')`)

	if err := db.RecoverNode("node3"); err != nil {
		t.Fatal(err)
	}
	n3, _ := db.Node("node3")
	init, _ := db.anyUpNode()
	if n3.catalog.Version() != init.catalog.Version() {
		t.Errorf("recovered node at v%d, cluster at v%d", n3.catalog.Version(), init.catalog.Version())
	}
	// All its subscriptions back to ACTIVE.
	for _, sub := range init.catalog.Snapshot().Subscriptions("node3") {
		if sub.State != catalog.SubActive {
			t.Errorf("subscription %d state %v after recovery", sub.ShardIndex, sub.State)
		}
	}
	res := mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
	if res.Row(t, 0)[0].I != 101 {
		t.Errorf("count = %v", res.Rows())
	}
}

func TestRecoveredNodeCacheWarm(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	setupSales(t, db, 500)
	s := db.NewSession()
	mustQuery(t, s, `SELECT COUNT(*) FROM sales WHERE price > 0`) // warm caches

	db.KillNode("node2")
	n2, _ := db.Node("node2")
	n2.cache.Clear(db.Context()) // simulate losing the instance
	if err := db.RecoverNode("node2"); err != nil {
		t.Fatal(err)
	}
	if n2.cache.Stats().Files == 0 {
		t.Error("recovered node should have a warmed cache (peer warming, §6.1)")
	}
}

func TestClusterShutsDownOnInvariantViolation(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	setupSales(t, db, 50)
	db.KillNode("node1")
	db.KillNode("node2") // 1 of 3 up: no quorum -> shutdown (§3.4)
	if !db.IsShutdown() {
		t.Fatal("cluster should shut down without quorum")
	}
	s := db.NewSession()
	if _, err := s.Query(`SELECT COUNT(*) FROM sales`); err == nil {
		t.Error("queries must fail after shutdown")
	}
}

func TestAddNodeElasticity(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	setupSales(t, db, 300)
	if err := db.AddNode(NodeSpec{Name: "node4"}); err != nil {
		t.Fatal(err)
	}
	init, _ := db.anyUpNode()
	snap := init.catalog.Snapshot()
	subs := snap.Subscriptions("node4")
	if len(subs) == 0 {
		t.Fatal("new node should receive subscriptions")
	}
	for _, sub := range subs {
		if sub.State != catalog.SubActive {
			t.Errorf("subscription to shard %d is %v, want ACTIVE", sub.ShardIndex, sub.State)
		}
	}
	// Queries immediately usable; no data was redistributed (shared
	// storage unchanged).
	s := db.NewSession()
	res := mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
	if res.Row(t, 0)[0].I != 300 {
		t.Errorf("count = %v", res.Rows())
	}
}

func TestRemoveNode(t *testing.T) {
	db := newTestDB(t, ModeEon, 4, 3)
	setupSales(t, db, 200)
	if err := db.RemoveNode("node4"); err != nil {
		t.Fatal(err)
	}
	init, _ := db.anyUpNode()
	snap := init.catalog.Snapshot()
	if len(snap.Subscriptions("node4")) != 0 {
		t.Error("removed node should have no subscriptions")
	}
	if _, ok := snap.NodeByName("node4"); ok {
		t.Error("removed node still in catalog")
	}
	// Every shard still fault tolerant.
	for _, sh := range snap.Shards() {
		if len(snap.SubscribersOf(sh.Index, catalog.SubActive)) < 1 {
			t.Errorf("shard %d lost coverage", sh.Index)
		}
	}
	s := db.NewSession()
	res := mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
	if res.Row(t, 0)[0].I != 200 {
		t.Errorf("count = %v", res.Rows())
	}
}

func TestSubclusterIsolation(t *testing.T) {
	db, err := Create(Config{
		Mode: ModeEon,
		Nodes: []NodeSpec{
			{Name: "a1", Subcluster: "A"}, {Name: "a2", Subcluster: "A"},
			{Name: "b1", Subcluster: "B"}, {Name: "b2", Subcluster: "B"},
		},
		ShardCount: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ensure both subclusters cover all shards.
	if err := db.Rebalance(); err != nil {
		t.Fatal(err)
	}
	setupSales(t, db, 100)

	// Session pinned to subcluster B: participating nodes must be b1/b2.
	s := db.NewSessionOn("B")
	env, err := s.selectParticipants(mustUp(t, db))
	if err != nil {
		t.Fatal(err)
	}
	for shard, node := range env.assignment {
		if node != "b1" && node != "b2" {
			t.Errorf("shard %d escaped subcluster B to %s (§4.3)", shard, node)
		}
	}
	res := mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
	if res.Row(t, 0)[0].I != 100 {
		t.Errorf("count = %v", res.Rows())
	}
}

func mustUp(t *testing.T, db *DB) *Node {
	t.Helper()
	n, err := db.anyUpNode()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestMoveoutDrainsWOS(t *testing.T) {
	db := newTestDB(t, ModeEnterprise, 2, 2)
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE t (id INTEGER)`)
	mustExec(t, s, `INSERT INTO t VALUES (1), (2), (3)`) // below WOS threshold
	moved, err := db.RunMoveout()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("moveout should write containers")
	}
	for _, n := range db.Nodes() {
		if n.wos.TotalRows() != 0 {
			t.Error("WOS should be empty after moveout")
		}
	}
	res := mustQuery(t, s, `SELECT COUNT(*) FROM t`)
	if res.Row(t, 0)[0].I != 3 {
		t.Errorf("count after moveout = %v", res.Rows())
	}
}

func TestMergeoutCompactsContainers(t *testing.T) {
	for name, mode := range modes() {
		t.Run(name, func(t *testing.T) {
			db := newTestDB(t, mode, 2, 2)
			s := db.NewSession()
			mustExec(t, s, `CREATE TABLE t (id INTEGER, v INTEGER)`)
			// Many small loads -> many containers.
			for i := 0; i < 12; i++ {
				rows := make([]types.Row, 10)
				for j := range rows {
					rows[j] = types.Row{types.NewInt(int64(i*10 + j)), types.NewInt(int64(j))}
				}
				if err := db.LoadRows("t", types.BatchFromRows(types.Schema{
					{Name: "id", Type: types.Int64}, {Name: "v", Type: types.Int64},
				}, rows)); err != nil {
					t.Fatal(err)
				}
			}
			if mode == ModeEnterprise {
				if _, err := db.RunMoveout(); err != nil {
					t.Fatal(err)
				}
			}
			countContainers := func() int {
				init, _ := db.anyUpNode()
				snap := init.catalog.Snapshot()
				tbl, _ := snap.TableByName("t")
				n := 0
				for _, p := range snap.ProjectionsOf(tbl.OID) {
					n += len(snap.ContainersOf(p.OID, catalog.GlobalShard))
				}
				return n
			}
			before := countContainers()
			stats, err := db.RunMergeout()
			if err != nil {
				t.Fatal(err)
			}
			if stats.Jobs == 0 {
				t.Fatalf("expected mergeout jobs for %d containers", before)
			}
			after := countContainers()
			if after >= before {
				t.Errorf("containers %d -> %d, expected reduction", before, after)
			}
			res := mustQuery(t, s, `SELECT COUNT(*) FROM t`)
			if res.Row(t, 0)[0].I != 120 {
				t.Errorf("count after mergeout = %v", res.Rows())
			}
		})
	}
}

func TestMergeoutPurgesDeletes(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE t (id INTEGER)`)
	rows := make([]types.Row, 100)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i))}
	}
	if err := db.LoadRows("t", types.BatchFromRows(types.Schema{{Name: "id", Type: types.Int64}}, rows)); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, `DELETE FROM t WHERE id < 50`)
	stats, err := db.RunMergeout()
	if err != nil {
		t.Fatal(err)
	}
	if stats.RowsPurged == 0 {
		t.Error("mergeout should purge deleted rows")
	}
	res := mustQuery(t, s, `SELECT COUNT(*) FROM t`)
	if res.Row(t, 0)[0].I != 50 {
		t.Errorf("count = %v", res.Rows())
	}
	// No delete vectors should remain on merged containers.
	init, _ := db.anyUpNode()
	snap := init.catalog.Snapshot()
	snap.ForEach(catalog.KindDeleteVector, func(o catalog.Object) bool {
		t.Errorf("stale delete vector %d", o.GetOID())
		return true
	})
}

func TestGCDeletesDroppedFilesSafely(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE t (id INTEGER)`)
	rows := make([]types.Row, 200)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i))}
	}
	schema := types.Schema{{Name: "id", Type: types.Int64}}
	for k := 0; k < 4; k++ {
		if err := db.LoadRows("t", types.BatchFromRows(schema, rows)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.RunMergeout(); err != nil {
		t.Fatal(err)
	}
	if db.PendingDeletes() == 0 {
		t.Fatal("mergeout should queue dropped files")
	}
	// Without a metadata sync the truncation version is 0: nothing may
	// be deleted yet (a revive could resurrect the old catalog).
	n, err := db.RunGC()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("GC deleted %d files before truncation advanced", n)
	}
	if err := db.SyncMetadata(); err != nil {
		t.Fatal(err)
	}
	n, err = db.RunGC()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("GC should delete after truncation passes the drop version")
	}
	// Queries still correct after GC.
	res := mustQuery(t, s, `SELECT COUNT(*) FROM t`)
	if res.Row(t, 0)[0].I != 800 {
		t.Errorf("count = %v", res.Rows())
	}
}

func TestScrubLeakedFiles(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	setupSales(t, db, 50)
	ctx := db.Context()
	// Leak a file: a crashed instance's orphan (prefix not of any
	// running instance).
	leaked := "data/ff/deadbeef00000000000000000000ff_0000000000000001_x"
	if err := db.SharedStore().Put(ctx, leaked, []byte("orphan")); err != nil {
		t.Fatal(err)
	}
	removed, err := db.ScrubLeakedFiles()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range removed {
		if r == leaked {
			found = true
		}
	}
	if !found {
		t.Errorf("leaked file not scrubbed: removed=%v", removed)
	}
	// Referenced files must survive.
	s := db.NewSession()
	res := mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
	if res.Row(t, 0)[0].I != 50 {
		t.Errorf("scrub removed live data: %v", res.Rows())
	}
}

func TestScrubSkipsRunningInstanceFiles(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	setupSales(t, db, 10)
	ctx := db.Context()
	// A file being written by a running instance (not yet committed).
	n1, _ := db.Node("node1")
	inflight := fmt.Sprintf("data/%s_%016x_y", string(n1.InstanceID())[:2]+"/"+string(n1.InstanceID()), 999)
	if err := db.SharedStore().Put(ctx, inflight, []byte("inflight")); err != nil {
		t.Fatal(err)
	}
	removed, err := db.ScrubLeakedFiles()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range removed {
		if r == inflight {
			t.Error("scrub must skip running-instance files (§6.5)")
		}
	}
}

func TestSyncAndTruncationVersion(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	setupSales(t, db, 100)
	if db.TruncationVersion() != 0 {
		t.Error("truncation starts at 0")
	}
	if err := db.SyncMetadata(); err != nil {
		t.Fatal(err)
	}
	init, _ := db.anyUpNode()
	if db.TruncationVersion() != init.catalog.Version() {
		t.Errorf("truncation = %d, cluster version = %d", db.TruncationVersion(), init.catalog.Version())
	}
	// cluster_info.json exists with the right content.
	data, err := db.SharedStore().Get(db.Context(), "cluster_info.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty cluster_info.json")
	}
}

func TestShutdownAndRevive(t *testing.T) {
	shared := objstore.NewMem()
	db, err := Create(Config{
		Mode:   ModeEon,
		Nodes:  []NodeSpec{{Name: "node1"}, {Name: "node2"}, {Name: "node3"}},
		Shared: shared, ShardCount: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	setupSales(t, db, 150)
	oldIncarnation := db.Incarnation()
	if err := db.Shutdown(); err != nil {
		t.Fatal(err)
	}

	db2, err := Revive(Config{Shared: shared})
	if err != nil {
		t.Fatal(err)
	}
	if db2.Incarnation() == oldIncarnation {
		t.Error("revive must adopt a new incarnation id")
	}
	s := db2.NewSession()
	res := mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
	if res.Row(t, 0)[0].I != 150 {
		t.Errorf("revived count = %v", res.Rows())
	}
	// The revived cluster accepts new writes.
	mustExec(t, s, `INSERT INTO sales VALUES (9999, 'omega', 1.5, 'south')`)
	res = mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
	if res.Row(t, 0)[0].I != 151 {
		t.Errorf("post-revive count = %v", res.Rows())
	}
}

func TestReviveDiscardsUnsyncedCommits(t *testing.T) {
	shared := objstore.NewMem()
	db, err := Create(Config{
		Mode:   ModeEon,
		Nodes:  []NodeSpec{{Name: "node1"}, {Name: "node2"}},
		Shared: shared, ShardCount: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	setupSales(t, db, 100)
	if err := db.SyncMetadata(); err != nil {
		t.Fatal(err)
	}
	// This commit happens after the last sync: its metadata never
	// reaches shared storage (the data files do).
	s := db.NewSession()
	mustExec(t, s, `INSERT INTO sales VALUES (777, 'lost', 1.0, 'x')`)
	// Simulate catastrophic loss of all instances: no clean shutdown.
	for _, n := range db.Nodes() {
		n.up.Store(false)
	}
	db.shutdown.Store(true)

	db2, err := Revive(Config{Shared: shared, Now: func() time.Time {
		return time.Now().Add(time.Hour) // lease from the dead cluster expired
	}})
	if err != nil {
		t.Fatal(err)
	}
	s2 := db2.NewSession()
	res := mustQuery(t, s2, `SELECT COUNT(*) FROM sales`)
	// The unsynced commit is discarded by truncation: 100 rows, not 101.
	if res.Row(t, 0)[0].I != 100 {
		t.Errorf("revived count = %v, want truncated 100", res.Rows())
	}
}

func TestReviveRespectsLease(t *testing.T) {
	shared := objstore.NewMem()
	db, err := Create(Config{
		Mode:   ModeEon,
		Nodes:  []NodeSpec{{Name: "node1"}, {Name: "node2"}},
		Shared: shared, ShardCount: 2, LeaseDuration: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	setupSales(t, db, 10)
	if err := db.SyncMetadata(); err != nil {
		t.Fatal(err)
	}
	// The original cluster still "runs": its lease is fresh.
	_, err = Revive(Config{Shared: shared})
	if !errors.Is(err, ErrLeaseHeld) {
		t.Errorf("revive should abort on a live lease, got %v", err)
	}
}

func TestOCCConflictOnConcurrentSchemaChange(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE t (id INTEGER)`)
	mustExec(t, s, `INSERT INTO t VALUES (1)`)

	// Two concurrent ALTERs race; OCC must let exactly one win per
	// column name and serialize correctly overall (§6.3).
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stmt, _ := sql.Parse(fmt.Sprintf(`ALTER TABLE t ADD COLUMN c%d INTEGER DEFAULT %d`, i, i))
			errs[i] = db.AlterAddColumn(stmt.(*sql.AlterAddColumn))
		}(i)
	}
	wg.Wait()
	// At least one succeeds; a failure must be a clean conflict.
	okCount := 0
	for _, err := range errs {
		if err == nil {
			okCount++
		} else if !errors.Is(err, catalog.ErrConflict) {
			t.Errorf("unexpected error: %v", err)
		}
	}
	if okCount == 0 {
		t.Fatal("both ALTERs failed")
	}
}

func TestLoadRollsBackOnSubscriptionChange(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE t (id INTEGER)`)
	mustExec(t, s, `INSERT INTO t VALUES (1)`) // creates default projection

	// Validation hook failure path: craft a load whose writer loses its
	// subscription before commit by committing a subscription change
	// concurrently. Simulate directly via validateWriters.
	validate := db.validateWriters([]writerShard{{node: "node1", shard: 0}})
	init, _ := db.anyUpNode()
	snap := init.catalog.Snapshot()
	if err := validate(snap); err != nil {
		t.Fatalf("current subscription should validate: %v", err)
	}
	// Drop node1's shard-0 subscription.
	txn := init.catalog.Begin()
	for _, sub := range snap.Subscriptions("node1") {
		if sub.ShardIndex == 0 {
			txn.Delete(sub.OID)
		}
	}
	if _, err := db.commit(init, txn, nil); err != nil {
		t.Fatal(err)
	}
	if err := validate(init.catalog.Snapshot()); err == nil {
		t.Error("validation should fail after unsubscription (§4.5)")
	}
}

func TestConcurrentQueriesAndLoads(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	setupSales(t, db, 200)
	var wg sync.WaitGroup
	errCh := make(chan error, 40)
	for i := 0; i < 10; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			s := db.NewSession()
			if _, err := s.Query(`SELECT region, COUNT(*) AS n FROM sales GROUP BY region`); err != nil {
				errCh <- err
			}
		}()
		go func(i int) {
			defer wg.Done()
			s := db.NewSession()
			if _, err := s.Execute(fmt.Sprintf(`INSERT INTO sales VALUES (%d, 'c', 1.0, 'z')`, 10000+i)); err != nil {
				errCh <- err
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("concurrent op failed: %v", err)
	}
	s := db.NewSession()
	res := mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
	if res.Row(t, 0)[0].I != 210 {
		t.Errorf("final count = %v", res.Rows())
	}
}

func TestCacheBypassSession(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	setupSales(t, db, 100)
	// Clear all caches so reads must hit shared storage.
	for _, n := range db.Nodes() {
		n.cache.Clear(db.Context())
	}
	s := db.NewSession()
	s.BypassCache = true
	mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
	for _, n := range db.Nodes() {
		if n.cache.Stats().Files != 0 {
			t.Error("bypass session must not populate the cache")
		}
	}
}
