// Benchmarks regenerating every figure of the paper's evaluation (§8)
// plus ablations of the design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Figure benches report the series the paper plots as custom metrics
// (qpm = queries/minute, lpm = loads/minute, ratio_* = relative
// runtimes); cmd/eon-bench prints the same data as tables.
package eon

import (
	"fmt"
	"testing"
	"time"

	"eon/internal/core"
	"eon/internal/experiments"
	"eon/internal/objstore"
	"eon/internal/types"
	"eon/internal/workload"
)

// --- Figure 10: TPC-H queries, Enterprise vs Eon in-cache vs Eon S3 ---

func BenchmarkFig10_TPCH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(experiments.Fig10Options{Scale: 0.05, Reps: 1})
		if err != nil {
			b.Fatal(err)
		}
		var ent, cache, s3 time.Duration
		for _, r := range rows {
			ent += r.Enterprise
			cache += r.EonCache
			s3 += r.EonS3
		}
		b.ReportMetric(float64(cache)/float64(ent), "ratio_eonCache_vs_ent")
		b.ReportMetric(float64(s3)/float64(cache), "ratio_eonS3_vs_cache")
	}
}

// --- Figure 11a: elastic throughput scaling ---

func BenchmarkFig11a_ElasticThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig11a(experiments.Fig11aOptions{
			Scale:         0.02,
			Window:        time.Second,
			Threads:       []int{24},
			EonNodeCounts: []int{3, 6, 9},
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			b.ReportMetric(s.QPM[0], "qpm_"+sanitize(s.Label))
		}
	}
}

// --- Figure 11b: concurrent small-COPY throughput ---

func BenchmarkFig11b_CopyThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig11b(experiments.Fig11bOptions{
			Window:        time.Second,
			Threads:       []int{16},
			EonNodeCounts: []int{3, 6, 9},
			RowsPerLoad:   200,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			b.ReportMetric(s.LPM[0], "lpm_"+sanitize(s.Label))
		}
	}
}

// --- Figure 12: throughput through a node kill ---

func BenchmarkFig12_NodeDown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(experiments.Fig12Options{
			Mode: core.ModeEon, Scale: 0.02,
			Threads: 20, Window: 500 * time.Millisecond, NumWindows: 8, KillWindow: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		before, after := res.BeforeAfter()
		if before > 0 {
			b.ReportMetric(after/before, "throughput_retained")
		}
	}
}

// --- §8 elasticity: node addition cost ---

func BenchmarkElasticity_AddNode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Elasticity(0.05)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.AddNodeTime.Microseconds()), "addnode_us")
		b.ReportMetric(float64(res.BytesWarmed), "bytes_warmed")
	}
}

// --- Ablations ---

// Running every query against shared storage vs through the cache (§5.2
// motivation for the cache's existence).
func BenchmarkAblation_CacheOff(b *testing.B) {
	db, _, err := experiments.NewEonCluster(3, 3, 2, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := experiments.LoadTPCH(db, 0.05); err != nil {
		b.Fatal(err)
	}
	warm := db.NewSession()
	if _, err := warm.Query(workload.DashboardQuery); err != nil {
		b.Fatal(err)
	}
	b.Run("cache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := warm.Query(workload.DashboardQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("no-cache", func(b *testing.B) {
		cold := db.NewSession()
		cold.BypassCache = true
		for i := 0; i < b.N; i++ {
			for _, n := range db.Nodes() {
				n.Cache().Clear(db.Context())
			}
			if _, err := cold.Query(workload.DashboardQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// S < E gives linear per-node scale-out; S close to N*E steps (§4.2 slot
// arithmetic). Compare throughput at different shard counts on a fixed
// cluster.
func BenchmarkAblation_ShardCount(b *testing.B) {
	for _, shards := range []int{1, 3, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			db, _, err := experiments.NewEonCluster(4, shards, 4, 2*time.Millisecond, 0)
			if err != nil {
				b.Fatal(err)
			}
			if err := experiments.LoadTPCH(db, 0.02); err != nil {
				b.Fatal(err)
			}
			if _, err := db.NewSession().Query(workload.DashboardQuery); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := db.NewSession().Query(workload.DashboardQuery); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// Hash-filter vs container-split crunch scaling (§4.4).
func BenchmarkAblation_CrunchScaling(b *testing.B) {
	db, _, err := experiments.NewEonCluster(4, 2, 4, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := experiments.LoadTPCH(db, 0.1); err != nil {
		b.Fatal(err)
	}
	q := workload.NodeDownQuery
	if _, err := db.NewSession().Query(q); err != nil {
		b.Fatal(err)
	}
	for name, mode := range map[string]core.CrunchMode{
		"off": core.CrunchOff, "hash-filter": core.CrunchHashFilter, "container-split": core.CrunchContainerSplit,
	} {
		b.Run(name, func(b *testing.B) {
			s := db.NewSession()
			s.Crunch = mode
			for i := 0; i < b.N; i++ {
				if _, err := s.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Node recovery with peer cache warming vs a cold cache (§5.2, §6.1):
// first-query latency on the recovered node's shards.
func BenchmarkAblation_PeerWarming(b *testing.B) {
	run := func(b *testing.B, clearAfterRecovery bool) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			db, _, err := experiments.NewEonCluster(3, 3, 3, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			if err := experiments.LoadTPCH(db, 0.05); err != nil {
				b.Fatal(err)
			}
			if _, err := db.NewSession().Query(workload.NodeDownQuery); err != nil {
				b.Fatal(err)
			}
			if err := db.KillNode("node3"); err != nil {
				b.Fatal(err)
			}
			n3, _ := db.Node("node3")
			n3.Cache().Clear(db.Context()) // instance storage lost
			if err := db.RecoverNode("node3"); err != nil {
				b.Fatal(err)
			}
			if clearAfterRecovery {
				n3.Cache().Clear(db.Context())
			}
			b.StartTimer()
			if _, err := db.NewSession().Query(workload.NodeDownQuery); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("warmed", func(b *testing.B) { run(b, false) })
	b.Run("cold", func(b *testing.B) { run(b, true) })
}

// Write-through vs write-around on load (§5.2: "newly added files are
// likely to be referenced by queries"): read latency right after a load.
func BenchmarkAblation_WriteThrough(b *testing.B) {
	run := func(b *testing.B, writeThrough bool) {
		db, _, err := experiments.NewEonCluster(3, 3, 2, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.LoadTPCH(db, 0.05); err != nil {
			b.Fatal(err)
		}
		if !writeThrough {
			for _, n := range db.Nodes() {
				n.Cache().Clear(db.Context())
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.NewSession().Query(workload.NodeDownQuery); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("write-through", func(b *testing.B) { run(b, true) })
	b.Run("write-around", func(b *testing.B) { run(b, false) })
}

// Live aggregate projection (S2.1) vs aggregating the base data: the LAP
// scans a few pre-aggregated rows instead of every base row.
func BenchmarkAblation_LiveAggregate(b *testing.B) {
	db, _, err := experiments.NewEonCluster(3, 3, 2, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, q := range []string{
		`CREATE TABLE clicks (region VARCHAR, hits INTEGER)`,
		`CREATE PROJECTION clicks_super AS SELECT * FROM clicks ORDER BY region SEGMENTED BY HASH(region) ALL NODES`,
		`CREATE PROJECTION clicks_agg AS SELECT region, COUNT(*) AS n, SUM(hits) AS total FROM clicks GROUP BY region`,
	} {
		if _, err := db.NewSession().Execute(q); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.LoadRows("clicks", makeClicks(50000)); err != nil {
		b.Fatal(err)
	}
	s := db.NewSession()
	lapQ := `SELECT region, COUNT(*) AS n, SUM(hits) AS total FROM clicks GROUP BY region`
	baseQ := `SELECT region, COUNT(*) AS n, SUM(hits) AS total, AVG(hits) AS m FROM clicks GROUP BY region`
	for _, q := range []string{lapQ, baseQ} {
		if _, err := s.Query(q); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("live-aggregate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Query(lapQ); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("base-projection", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Query(baseQ); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Scan pipeline parallelism (ScanConcurrency sweep) ---

// scanBenchDB builds a single-node Eon cluster whose scans have plenty
// of independent I/O: bundling disabled (every column a separate file),
// a wide table loaded in several batches so each shard holds multiple
// containers.
func scanBenchDB(b *testing.B, scanConc int) *core.DB {
	b.Helper()
	sim := objstore.NewSim(objstore.NewMem(), experiments.SharedStorageSim(1))
	db, err := core.Create(core.Config{
		Mode:            core.ModeEon,
		Nodes:           []core.NodeSpec{{Name: "node1"}},
		ShardCount:      4,
		Shared:          sim,
		Net:             experiments.ClusterNet(),
		BundleThreshold: -1,
		ScanConcurrency: scanConc,
	})
	if err != nil {
		b.Fatal(err)
	}
	const cols = 8
	ddl := `CREATE TABLE wide (c0 INTEGER`
	proj := `CREATE PROJECTION wide_p AS SELECT * FROM wide ORDER BY c0 SEGMENTED BY HASH(c0) ALL NODES`
	schema := types.Schema{{Name: "c0", Type: types.Int64}}
	for i := 1; i < cols; i++ {
		ddl += fmt.Sprintf(", c%d INTEGER", i)
		schema = append(schema, types.Column{Name: fmt.Sprintf("c%d", i), Type: types.Int64})
	}
	ddl += `)`
	s := db.NewSession()
	for _, q := range []string{ddl, proj} {
		if _, err := s.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
	id := 0
	for load := 0; load < 6; load++ {
		batch := types.NewBatch(schema, 2000)
		for r := 0; r < 2000; r++ {
			id++
			row := make(types.Row, cols)
			row[0] = types.NewInt(int64(id))
			for c := 1; c < cols; c++ {
				row[c] = types.NewInt(int64(id * c))
			}
			batch.AppendRow(row)
		}
		if err := db.LoadRows("wide", batch); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// scanBenchQuery touches every column so a cold scan fetches every
// column file of every container.
const scanBenchQuery = `SELECT SUM(c0), SUM(c1), SUM(c2), SUM(c3), SUM(c4), SUM(c5), SUM(c6), SUM(c7) FROM wide`

// BenchmarkScanParallelism sweeps ScanConcurrency over cold and warm
// caches. Cold scans are dominated by shared-storage round trips
// (containers x columns fetches at the simulated 3 ms GET latency), so
// they shrink near-linearly with concurrency; warm scans measure the
// decode+filter pipeline alone.
func BenchmarkScanParallelism(b *testing.B) {
	for _, conc := range []int{1, 2, 4, 8, 16} {
		db := scanBenchDB(b, conc)
		s := db.NewSession()
		b.Run(fmt.Sprintf("cold/conc-%d", conc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for _, n := range db.Nodes() {
					n.Cache().Clear(db.Context())
				}
				b.StartTimer()
				if _, err := s.Query(scanBenchQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("warm/conc-%d", conc), func(b *testing.B) {
			if _, err := s.Query(scanBenchQuery); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Query(scanBenchQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Vectorized execution kernels (row engine vs batch kernels) ---

// kernelBenchDB builds a warm single-node cluster with a mixed-type
// table sized so expression evaluation and aggregation dominate the
// query time (decode and I/O are identical on both engines).
func kernelBenchDB(b *testing.B) *core.DB {
	b.Helper()
	return kernelBenchDBDC(b, false)
}

// kernelBenchDBDC is kernelBenchDB with the Data Collector optionally
// disabled, so BenchmarkDCOverhead and TestDCOverheadGate can compare
// emit cost against a cluster where every Emit is a nil-receiver no-op.
func kernelBenchDBDC(b testing.TB, disableDC bool) *core.DB {
	b.Helper()
	sim := objstore.NewSim(objstore.NewMem(), experiments.SharedStorageSim(1))
	db, err := core.Create(core.Config{
		Mode:                 core.ModeEon,
		Nodes:                []core.NodeSpec{{Name: "node1"}},
		ShardCount:           2,
		Shared:               sim,
		Net:                  experiments.ClusterNet(),
		BundleThreshold:      -1,
		DisableDataCollector: disableDC,
	})
	if err != nil {
		b.Fatal(err)
	}
	s := db.NewSession()
	for _, q := range []string{
		`CREATE TABLE metrics (k INTEGER, a INTEGER, b INTEGER, f FLOAT, s VARCHAR)`,
		`CREATE PROJECTION metrics_p AS SELECT * FROM metrics ORDER BY k SEGMENTED BY HASH(k) ALL NODES`,
	} {
		if _, err := s.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
	schema := types.Schema{
		{Name: "k", Type: types.Int64},
		{Name: "a", Type: types.Int64},
		{Name: "b", Type: types.Int64},
		{Name: "f", Type: types.Float64},
		{Name: "s", Type: types.Varchar},
	}
	names := []string{"sensor-a", "sensor-b", "gauge-x", "meter-7"}
	id := 0
	for load := 0; load < 4; load++ {
		batch := types.NewBatch(schema, 25000)
		for r := 0; r < 25000; r++ {
			id++
			batch.AppendRow(types.Row{
				types.NewInt(int64(id % 16)),
				types.NewInt(int64(id % 1000)),
				types.NewInt(int64(id % 97)),
				types.NewFloat(float64(id%100) / 100),
				types.NewString(names[id%4]),
			})
		}
		if err := db.LoadRows("metrics", batch); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// kernelBenchQuery stresses every kernel family: compound predicate
// with LIKE and numeric comparisons, mixed int/float arithmetic, CASE
// over a LIKE condition, and a grouped aggregation with the count, sum,
// avg and min/max paths.
const kernelBenchQuery = `SELECT k, COUNT(*) AS n, SUM(a * (1 - f)) AS disc,
	SUM(CASE WHEN s LIKE '%-b%' THEN f ELSE 0 END) AS promo,
	AVG(f) AS avg_f, MIN(b) AS lo, MAX(b) AS hi
	FROM metrics WHERE a > 25 AND f < 0.95 AND s LIKE 'sen%'
	GROUP BY k ORDER BY k`

// BenchmarkQueryKernels compares the vectorized engine (default)
// against the row engine on a warm filter+aggregate query. Both run the
// same plan over the same cached data; only expression evaluation and
// operator inner loops differ.
func BenchmarkQueryKernels(b *testing.B) {
	db := kernelBenchDB(b)
	for _, eng := range []struct {
		name string
		row  bool
	}{{"vec", false}, {"row", true}} {
		b.Run(eng.name, func(b *testing.B) {
			s := db.NewSession()
			s.RowEngine = eng.row
			res, err := s.Query(kernelBenchQuery)
			if err != nil {
				b.Fatal(err)
			}
			// The LIKE keeps id%4 in {0,1}, so k=id%16 takes 8 values.
			if res.NumRows() != 8 {
				b.Fatalf("groups = %d, want 8", res.NumRows())
			}
			if !eng.row {
				if st := s.LastScanStats(); st.RowsFallback != 0 {
					b.Fatalf("vectorized engine fell back on %d rows", st.RowsFallback)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Query(kernelBenchQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Streaming executor vs materialized escape hatch ---

// BenchmarkStreamingExec compares the streaming pipeline against the
// stage-at-a-time materialized executor on a three-node cluster. The
// "limit" pair shows early termination: streaming stops the fragment
// scans as soon as the LIMIT is satisfied, while the materialized path
// still scans (but no longer ships) everything. The "agg" pair runs a
// grouped aggregation where both executors do the same work and should
// be near parity; the streaming side also reports its governed peak
// memory.
func BenchmarkStreamingExec(b *testing.B) {
	db, _, err := experiments.NewEonCluster(3, 3, 2, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := experiments.LoadTPCH(db, 0.05); err != nil {
		b.Fatal(err)
	}
	const limitQ = `SELECT l_orderkey, l_extendedprice FROM lineitem LIMIT 20`
	aggQ := workload.DashboardQuery
	for _, q := range []struct{ name, sql string }{{"limit", limitQ}, {"agg", aggQ}} {
		for _, mode := range []struct {
			name         string
			materialized bool
		}{{"streaming", false}, {"materialized", true}} {
			b.Run(q.name+"/"+mode.name, func(b *testing.B) {
				s := db.NewSession()
				s.MaterializedExec = mode.materialized
				if _, err := s.Query(q.sql); err != nil { // warm the caches
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.Query(q.sql); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if !mode.materialized {
					b.ReportMetric(float64(s.LastExecStats().PeakMemBytes), "peak_mem_bytes")
				}
			})
		}
	}
}

// --- Observability: span tracing overhead ---

// BenchmarkTracingOverhead measures the cost of per-query span tracing
// on a warm kernel-bench query: "off" is the production default (nil
// trace, every span call a no-op), "on" builds the full span tree and
// profile per query. EXPERIMENTS.md gates "off" at <=3% vs the pre-obs
// baseline; compare off/on here for the enabled cost.
func BenchmarkTracingOverhead(b *testing.B) {
	db := kernelBenchDB(b)
	for _, cfg := range []struct {
		name  string
		trace bool
	}{{"off", false}, {"on", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			s := db.NewSession()
			s.Trace = cfg.trace
			if _, err := s.Query(kernelBenchQuery); err != nil {
				b.Fatal(err)
			}
			if cfg.trace && s.LastProfile() == nil {
				b.Fatal("tracing on but no profile recorded")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Query(kernelBenchQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDCOverhead measures the Data Collector's cost on the warm
// kernel-bench query: "off" disables the collector at Create time (every
// Emit is a nil-receiver no-op), "on" is the production default with all
// rings live. The depot is warm, so the hot path sees the dc_depot_fetches
// emit per container read plus the session-ring append per query.
// `make systables` gates on/off at <=3%.
func BenchmarkDCOverhead(b *testing.B) {
	// Build both clusters before either timed loop: constructing the
	// second inside its own b.Run would make that sub-benchmark pay the
	// first one's heap garbage, drowning the emit cost in GC noise.
	dbOff := kernelBenchDBDC(b, true)
	dbOn := kernelBenchDBDC(b, false)
	if dbOff.DataCollector() != nil {
		b.Fatal("collector still live with DisableDataCollector")
	}
	for _, cfg := range []struct {
		name string
		db   *core.DB
	}{{"off", dbOff}, {"on", dbOn}} {
		b.Run(cfg.name, func(b *testing.B) {
			s := cfg.db.NewSession()
			if _, err := s.Query(kernelBenchQuery); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Query(kernelBenchQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func makeClicks(n int) *types.Batch {
	schema := types.Schema{
		{Name: "region", Type: types.Varchar},
		{Name: "hits", Type: types.Int64},
	}
	regions := []string{"east", "west", "north", "south"}
	b := types.NewBatch(schema, n)
	for i := 0; i < n; i++ {
		b.AppendRow(types.Row{types.NewString(regions[i%4]), types.NewInt(int64(i % 100))})
	}
	return b
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			out = append(out, '_')
			continue
		}
		out = append(out, r)
	}
	return string(out)
}

// --- Reconciler: chaos-measured recovery, warm spare vs cold revive ---

// BenchmarkReconcileRecovery kills a node (process and depot) in the
// middle of a sustained exact-result workload, lets the reconciler
// repair the cluster, and reports time-to-recovered-throughput and
// time-to-full-service for both repair paths. The claim under test:
// promoting a pre-warmed spare (one subscription flip) restores full
// service faster than reviving the dead node, which pays catch-up,
// re-subscription and a depot re-warm after the failure.
func BenchmarkReconcileRecovery(b *testing.B) {
	for _, mode := range []struct {
		name  string
		spare bool
	}{{"spare", true}, {"cold", false}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.ChaosRecovery(experiments.RecoveryOptions{
					Spare:  mode.spare,
					Warmup: 600 * time.Millisecond,
					Post:   3 * time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Wrong != 0 {
					b.Fatalf("%d wrong query results during recovery", res.Wrong)
				}
				b.ReportMetric(res.BaselineQPS, "baseline_qps")
				b.ReportMetric(float64(res.TimeToRestored.Microseconds()), "restore_us")
				b.ReportMetric(float64(res.TimeToRecovered.Milliseconds()), "ttr_ms")
				b.ReportMetric(float64(res.TimeToConverged.Milliseconds()), "converge_ms")
			}
		})
	}
}

// --- Serving path: plan/result caches and admission control ---

// BenchmarkServingThroughput hammers one hot analytic query from many
// concurrent sessions on a cache-enabled and a cache-disabled cluster
// (the warm side serves from the result cache without parsing, planning
// or executing), then measures the admission-queue latency tail with
// more sessions than the per-subcluster concurrency cap.
func BenchmarkServingThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ServingThroughput(experiments.ServingOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CachedQPM, "qpm_cached")
		b.ReportMetric(res.UncachedQPM, "qpm_uncached")
		if res.UncachedQPM > 0 {
			b.ReportMetric(res.CachedQPM/res.UncachedQPM, "speedup_cached")
		}
		b.ReportMetric(float64(res.AdmissionP50.Microseconds()), "admission_p50_us")
		b.ReportMetric(float64(res.AdmissionP99.Microseconds()), "admission_p99_us")
	}
}
