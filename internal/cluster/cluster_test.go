package cluster

import (
	"testing"
	"testing/quick"
	"time"
)

func TestInstanceIDUnique(t *testing.T) {
	a, b := NewInstanceID(), NewInstanceID()
	if a == b {
		t.Error("instance ids must differ")
	}
	if len(a) != 30 { // 15 bytes hex
		t.Errorf("instance id length = %d", len(a))
	}
}

func TestIncarnationIDFormat(t *testing.T) {
	id := NewIncarnationID()
	if len(id) != 36 {
		t.Errorf("uuid length = %d: %s", len(id), id)
	}
	if id[8] != '-' || id[13] != '-' || id[18] != '-' || id[23] != '-' {
		t.Errorf("uuid dashes wrong: %s", id)
	}
	if id[14] != '4' {
		t.Errorf("uuid version nibble: %s", id)
	}
	if NewIncarnationID() == id {
		t.Error("incarnations must differ")
	}
}

func TestInfoRoundtrip(t *testing.T) {
	in := &Info{
		Database:          "testdb",
		Incarnation:       NewIncarnationID(),
		TruncationVersion: 42,
		Nodes:             []string{"n1", "n2"},
		Timestamp:         time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC),
		LeaseExpiry:       time.Date(2018, 6, 1, 0, 5, 0, 0, time.UTC),
	}
	data, err := in.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseInfo(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.TruncationVersion != 42 || out.Database != "testdb" || len(out.Nodes) != 2 {
		t.Errorf("roundtrip = %+v", out)
	}
	if out.Incarnation != in.Incarnation {
		t.Error("incarnation lost")
	}
}

func TestParseInfoInvalid(t *testing.T) {
	if _, err := ParseInfo([]byte("not json")); err == nil {
		t.Error("invalid json should fail")
	}
}

func TestLeaseValid(t *testing.T) {
	now := time.Now()
	i := &Info{LeaseExpiry: now.Add(time.Minute)}
	if !i.LeaseValid(now) {
		t.Error("unexpired lease should be valid")
	}
	if i.LeaseValid(now.Add(2 * time.Minute)) {
		t.Error("expired lease should be invalid")
	}
}

func TestSyncInterval(t *testing.T) {
	iv := SyncInterval{Lower: 3, Upper: 7}
	if !iv.Contains(3) || !iv.Contains(7) || !iv.Contains(5) {
		t.Error("contains within bounds")
	}
	if iv.Contains(2) || iv.Contains(8) {
		t.Error("contains outside bounds")
	}
}

func TestSyncTracker(t *testing.T) {
	tr := NewSyncTracker()
	tr.Update("n1", SyncInterval{Lower: 1, Upper: 5})
	tr.Update("n2", SyncInterval{Lower: 1, Upper: 7})
	tr.Update("n1", SyncInterval{Lower: 2, Upper: 6})
	iv, ok := tr.Get("n1")
	if !ok || iv.Upper != 6 {
		t.Errorf("get = %+v, %v", iv, ok)
	}
	if _, ok := tr.Get("missing"); ok {
		t.Error("missing node")
	}
	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Errorf("snapshot = %v", snap)
	}
}

// The Figure 5 example: 4 nodes, 4 shards. Node upper bounds chosen so
// the per-shard maxima are {5, 7, 5, 7} and the consensus is 5.
func TestComputeTruncationVersionFigure5(t *testing.T) {
	intervals := map[string]SyncInterval{
		"node1": {Upper: 5},
		"node2": {Upper: 7},
		"node3": {Upper: 3},
		"node4": {Upper: 4},
	}
	shardSubs := map[int][]string{
		0: {"node1", "node4"}, // max 5
		1: {"node2", "node3"}, // max 7
		2: {"node3", "node1"}, // max 5
		3: {"node4", "node2"}, // max 7
	}
	v, ok := ComputeTruncationVersion(shardSubs, intervals)
	if !ok || v != 5 {
		t.Errorf("consensus = %d, %v; want 5", v, ok)
	}
}

func TestComputeTruncationVersionMissingShard(t *testing.T) {
	_, ok := ComputeTruncationVersion(map[int][]string{
		0: {"n1"},
		1: {"n2"}, // n2 never uploaded
	}, map[string]SyncInterval{"n1": {Upper: 9}})
	if ok {
		t.Error("shard with no uploads must make consensus impossible")
	}
}

func TestComputeTruncationVersionEmpty(t *testing.T) {
	if _, ok := ComputeTruncationVersion(nil, nil); ok {
		t.Error("no shards should not produce a consensus")
	}
}

// Property: the consensus version is revivable for every shard — some
// subscriber of each shard has uploaded at least that version.
func TestQuickTruncationConsensusSafe(t *testing.T) {
	f := func(uppers [4]uint8) bool {
		intervals := map[string]SyncInterval{}
		nodes := []string{"a", "b", "c", "d"}
		for i, n := range nodes {
			intervals[n] = SyncInterval{Upper: uint64(uppers[i])}
		}
		shardSubs := map[int][]string{
			0: {"a", "b"}, 1: {"b", "c"}, 2: {"c", "d"}, 3: {"d", "a"},
		}
		v, ok := ComputeTruncationVersion(shardSubs, intervals)
		if !ok {
			return false
		}
		for _, subs := range shardSubs {
			covered := false
			for _, n := range subs {
				if intervals[n].Upper >= v {
					covered = true
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
