package experiments

import (
	"time"

	"eon/internal/workload"
)

// Fig10Row is one query's runtimes in the three configurations of
// Figure 10: Enterprise, Eon reading from its cache, and Eon reading
// from shared storage.
type Fig10Row struct {
	Query      string
	Enterprise time.Duration
	EonCache   time.Duration
	EonS3      time.Duration
}

// Fig10Options tunes the experiment.
type Fig10Options struct {
	// Scale is the TPC-H scale factor (paper: SF200 on 4 nodes; default
	// 0.2 keeps the run under a minute).
	Scale float64
	// Reps per query; the median is reported.
	Reps int
	// Queries restricts the set (nil = all twenty).
	Queries []workload.Query
}

// Fig10 reproduces Figure 10: the 20 TPC-H queries on a 4-node
// Enterprise cluster versus a 4-node, 4-shard Eon cluster, in-cache and
// from shared storage.
func Fig10(opts Fig10Options) ([]Fig10Row, error) {
	if opts.Scale <= 0 {
		opts.Scale = 0.2
	}
	if opts.Reps <= 0 {
		opts.Reps = 3
	}
	queries := opts.Queries
	if queries == nil {
		queries = workload.TPCHQueries()
	}

	entDB, err := newEnterpriseDB(4, costs{})
	if err != nil {
		return nil, err
	}
	if err := loadTPCH(entDB, opts.Scale); err != nil {
		return nil, err
	}
	eonDB, _, err := newEonDB(4, 4, 2, costs{})
	if err != nil {
		return nil, err
	}
	if err := loadTPCH(eonDB, opts.Scale); err != nil {
		return nil, err
	}

	entSession := entDB.NewSession()
	eonSession := eonDB.NewSession()
	coldSession := eonDB.NewSession()
	coldSession.BypassCache = true

	var rows []Fig10Row
	for _, q := range queries {
		row := Fig10Row{Query: q.Name}

		row.Enterprise, err = medianDuration(opts.Reps, func() error {
			_, err := entSession.Query(q.SQL)
			return err
		})
		if err != nil {
			return nil, err
		}

		// Warm the caches once, then measure in-cache performance (the
		// paper: "many deployments will be sized to fit the working set
		// into the cache").
		if _, err := eonSession.Query(q.SQL); err != nil {
			return nil, err
		}
		row.EonCache, err = medianDuration(opts.Reps, func() error {
			_, err := eonSession.Query(q.SQL)
			return err
		})
		if err != nil {
			return nil, err
		}

		// Cold: clear every cache and bypass admission, so every read
		// pays the shared-storage latency.
		row.EonS3, err = medianDuration(opts.Reps, func() error {
			for _, n := range eonDB.Nodes() {
				n.Cache().Clear(eonDB.Context())
			}
			_, err := coldSession.Query(q.SQL)
			return err
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
