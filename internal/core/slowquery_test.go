package core

import (
	"testing"
	"time"

	"eon/internal/objstore"
	"eon/internal/types"
)

// TestSlowQueryLogBasics checks the threshold and ring behaviour: with a
// 1ns threshold every query is slow, entries come back oldest-first, and
// the ring caps at SlowQueryLogSize.
func TestSlowQueryLogBasics(t *testing.T) {
	db, err := Create(Config{
		Mode:               ModeEon,
		Nodes:              []NodeSpec{{Name: "n1"}, {Name: "n2"}},
		ShardCount:         2,
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryLogSize:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	setupSales(t, db, 40)
	s := db.NewSession()
	for i := 0; i < 6; i++ {
		mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
	}
	entries := db.SlowQueries()
	if len(entries) != 4 {
		t.Fatalf("slow log has %d entries, want ring size 4", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Start.Before(entries[i-1].Start) {
			t.Fatalf("slow log not oldest-first: entry %d starts before entry %d", i, i-1)
		}
	}
	for i, e := range entries {
		if e.SQL == "" {
			t.Errorf("entry %d has no SQL text", i)
		}
		if e.Profile == nil {
			t.Errorf("entry %d has no profile", i)
		}
	}
}

// TestSlowQueryLogCompleteUnderChaos is the failure-path drill: with
// shared storage failing and throttling on a deterministic schedule,
// cleared caches forcing cold reads, and a mid-stream node kill, every
// slow-log entry — including failed queries — must carry a complete
// profile with zero dangling spans (no span left open by an error
// return).
func TestSlowQueryLogCompleteUnderChaos(t *testing.T) {
	// chaosSchedule's 5% rate is fully absorbed by the retry layer, so a
	// total-outage window is added on top: every op in it fails, which
	// exhausts retries and forces real query failures into the log.
	faults := chaosSchedule(33)
	// (This workload issues ~90 store ops total, so the outage sits in
	// the middle of the query stream.)
	faults.Windows = append(faults.Windows, objstore.FaultWindow{
		OpRange: objstore.OpRange{From: 30, To: 70}, Rate: 1.0,
	})
	sim := objstore.NewSim(objstore.NewMem(), objstore.SimConfig{
		Seed:   7,
		Faults: faults,
	})
	db, err := Create(Config{
		Mode:               ModeEon,
		Nodes:              []NodeSpec{{Name: "n1"}, {Name: "n2"}, {Name: "n3"}},
		ShardCount:         6,
		Shared:             sim,
		Seed:               9,
		Resilience:         chaosResilience(),
		SlowQueryThreshold: time.Nanosecond, // log every query, success or not
	})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE chaos (id INTEGER, grp INTEGER)`)
	schema := types.Schema{{Name: "id", Type: types.Int64}, {Name: "grp", Type: types.Int64}}
	const rows = 300
	b := types.NewBatch(schema, rows)
	for i := 0; i < rows; i++ {
		b.AppendRow(types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 5))})
	}
	if err := db.LoadRows("chaos", b); err != nil {
		t.Fatalf("load under faults: %v", err)
	}

	failures := 0
	for q := 0; q < 24; q++ {
		if q == 9 {
			if err := db.KillNode("n3"); err != nil {
				t.Fatal(err)
			}
		}
		if q%3 == 0 {
			for _, n := range db.Nodes() {
				if n.Up() {
					n.cache.Clear(db.Context())
				}
			}
		}
		if _, err := s.Query(`SELECT grp, COUNT(*), SUM(id) FROM chaos GROUP BY grp`); err != nil {
			failures++
		}
	}

	entries := db.SlowQueries()
	if len(entries) == 0 {
		t.Fatal("no slow-log entries recorded")
	}
	loggedFailures := 0
	for i, e := range entries {
		if e.Profile == nil {
			t.Fatalf("entry %d (%q, err=%q) has no profile", i, e.SQL, e.Err)
		}
		if e.Profile.Dangling != 0 {
			t.Errorf("entry %d (err=%q): %d dangling spans in profile", i, e.Err, e.Profile.Dangling)
		}
		if e.Wall <= 0 {
			t.Errorf("entry %d has non-positive wall time %v", i, e.Wall)
		}
		if e.Err != "" {
			loggedFailures++
		}
	}
	// Retried attempts each log separately, so the log can hold more
	// failures than the stream observed — but never fewer.
	if loggedFailures < failures {
		t.Errorf("stream saw %d failures but slow log records %d", failures, loggedFailures)
	}
	// The schedule is deterministic: this seed must actually drive
	// queries into failure paths, or the dangling-span check above
	// proves nothing about them.
	if loggedFailures == 0 {
		t.Error("no failed queries in the slow log; chaos schedule exercised no failure paths")
	}
	t.Logf("%d entries, %d failed attempts logged, %d stream failures", len(entries), loggedFailures, failures)
}
