package types

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		Int64: "INTEGER", Float64: "FLOAT", Varchar: "VARCHAR",
		Bool: "BOOLEAN", Date: "DATE", Timestamp: "TIMESTAMP",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestParseType(t *testing.T) {
	cases := map[string]Type{
		"int": Int64, "INTEGER": Int64, "bigint": Int64,
		"float": Float64, "double precision": Float64,
		"varchar": Varchar, "TEXT": Varchar,
		"bool": Bool, "date": Date, "timestamp": Timestamp,
	}
	for in, want := range cases {
		got, err := ParseType(in)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("ParseType(blob) should fail")
	}
}

func TestPhysical(t *testing.T) {
	if Date.Physical() != Int64 || Timestamp.Physical() != Int64 {
		t.Error("Date and Timestamp must be physically Int64")
	}
	if Varchar.Physical() != Varchar {
		t.Error("Varchar is its own physical class")
	}
}

func TestDatumString(t *testing.T) {
	if got := NewInt(42).String(); got != "42" {
		t.Errorf("int datum = %q", got)
	}
	if got := NullDatum(Int64).String(); got != "NULL" {
		t.Errorf("null datum = %q", got)
	}
	d := DateFromTime(time.Date(2018, 6, 10, 12, 0, 0, 0, time.UTC))
	if got := d.String(); got != "2018-06-10" {
		t.Errorf("date datum = %q", got)
	}
	if got := NewString("hi").String(); got != "hi" {
		t.Errorf("string datum = %q", got)
	}
	if got := NewBool(true).String(); got != "true" {
		t.Errorf("bool datum = %q", got)
	}
}

func TestDatumCompare(t *testing.T) {
	if NewInt(1).Compare(NewInt(2)) >= 0 {
		t.Error("1 < 2")
	}
	if NewString("a").Compare(NewString("b")) >= 0 {
		t.Error("a < b")
	}
	if NullDatum(Int64).Compare(NewInt(-1)) >= 0 {
		t.Error("NULL sorts first")
	}
	if NullDatum(Int64).Compare(NullDatum(Int64)) != 0 {
		t.Error("NULL == NULL in storage order")
	}
	if NewFloat(1.5).Compare(NewFloat(1.5)) != 0 {
		t.Error("equal floats")
	}
	if NewBool(false).Compare(NewBool(true)) >= 0 {
		t.Error("false < true")
	}
}

// Property: Compare is antisymmetric over int datums.
func TestDatumCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := NewInt(a), NewInt(b)
		return x.Compare(y) == -y.Compare(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorAppendDatumRoundtrip(t *testing.T) {
	v := NewVector(Varchar, 4)
	v.Append(NewString("x"))
	v.Append(NullDatum(Varchar))
	v.Append(NewString("z"))
	if v.Len() != 3 {
		t.Fatalf("len = %d", v.Len())
	}
	if v.Datum(0).S != "x" || !v.Datum(1).Null || v.Datum(2).S != "z" {
		t.Errorf("roundtrip mismatch: %v %v %v", v.Datum(0), v.Datum(1), v.Datum(2))
	}
}

func TestVectorNullTracking(t *testing.T) {
	v := NewVector(Int64, 4)
	v.Append(NewInt(1))
	if v.Nulls != nil {
		t.Error("no nulls yet")
	}
	v.Append(NullDatum(Int64))
	v.Append(NewInt(3))
	if !v.IsNull(1) || v.IsNull(0) || v.IsNull(2) {
		t.Error("null bitmap wrong")
	}
}

func TestVectorGatherSlice(t *testing.T) {
	v := NewVector(Int64, 8)
	for i := int64(0); i < 8; i++ {
		v.Append(NewInt(i * 10))
	}
	g := v.Gather([]int{7, 0, 3})
	if g.Ints[0] != 70 || g.Ints[1] != 0 || g.Ints[2] != 30 {
		t.Errorf("gather = %v", g.Ints)
	}
	s := v.Slice(2, 5)
	if s.Len() != 3 || s.Ints[0] != 20 {
		t.Errorf("slice = %v", s.Ints)
	}
}

func TestVectorAppendVectorWithNulls(t *testing.T) {
	a := NewVector(Int64, 2)
	a.Append(NewInt(1))
	b := NewVector(Int64, 2)
	b.Append(NullDatum(Int64))
	b.Append(NewInt(2))
	a.AppendVector(b)
	if a.Len() != 3 || !a.IsNull(1) || a.IsNull(2) || a.IsNull(0) {
		t.Errorf("AppendVector nulls wrong: %v %v", a.Ints, a.Nulls)
	}
}

func TestBatchRowRoundtrip(t *testing.T) {
	s := Schema{{"id", Int64}, {"name", Varchar}}
	b := NewBatch(s, 2)
	b.AppendRow(Row{NewInt(1), NewString("ada")})
	b.AppendRow(Row{NewInt(2), NullDatum(Varchar)})
	if b.NumRows() != 2 || b.NumCols() != 2 {
		t.Fatalf("batch dims %dx%d", b.NumRows(), b.NumCols())
	}
	r := b.Row(1)
	if r[0].I != 2 || !r[1].Null {
		t.Errorf("row = %v", r)
	}
	rows := b.Rows()
	if len(rows) != 2 || rows[0][1].S != "ada" {
		t.Errorf("rows = %v", rows)
	}
}

func TestBatchGatherAppend(t *testing.T) {
	s := Schema{{"x", Int64}}
	b := BatchFromRows(s, []Row{{NewInt(5)}, {NewInt(6)}, {NewInt(7)}})
	g := b.Gather([]int{2, 0})
	if g.Cols[0].Ints[0] != 7 || g.Cols[0].Ints[1] != 5 {
		t.Errorf("gather = %v", g.Cols[0].Ints)
	}
	g.AppendBatch(b.Slice(1, 2))
	if g.NumRows() != 3 || g.Cols[0].Ints[2] != 6 {
		t.Errorf("append = %v", g.Cols[0].Ints)
	}
}

func TestSchemaOps(t *testing.T) {
	s := Schema{{"a", Int64}, {"B", Varchar}, {"c", Float64}}
	if s.ColumnIndex("b") != 1 {
		t.Error("case-insensitive lookup failed")
	}
	if s.ColumnIndex("zz") != -1 {
		t.Error("missing column should be -1")
	}
	p := s.Project([]int{2, 0})
	if p[0].Name != "c" || p[1].Name != "a" {
		t.Errorf("project = %v", p)
	}
	if len(s.Names()) != 3 || len(s.Types()) != 3 {
		t.Error("names/types lengths")
	}
}

func TestColumnStatsMerge(t *testing.T) {
	a := ColumnStats{Min: NewInt(5), Max: NewInt(10)}
	b := ColumnStats{Min: NewInt(1), Max: NewInt(7), HasNulls: true}
	a.Merge(b)
	if a.Min.I != 1 || a.Max.I != 10 || !a.HasNulls {
		t.Errorf("merge = %+v", a)
	}
	allNull := ColumnStats{AllNull: true}
	allNull.Merge(ColumnStats{Min: NewInt(3), Max: NewInt(3)})
	if allNull.AllNull || allNull.Min.I != 3 {
		t.Errorf("allnull merge = %+v", allNull)
	}
}

func TestStatsOf(t *testing.T) {
	v := NewVector(Int64, 4)
	v.Append(NewInt(3))
	v.Append(NullDatum(Int64))
	v.Append(NewInt(-1))
	st := StatsOf(v)
	if st.Min.I != -1 || st.Max.I != 3 || !st.HasNulls || st.AllNull {
		t.Errorf("stats = %+v", st)
	}
	nv := NewVector(Int64, 1)
	nv.Append(NullDatum(Int64))
	if st := StatsOf(nv); !st.AllNull {
		t.Errorf("all-null stats = %+v", st)
	}
}
