// Package colenc implements the column encodings used inside ROS container
// files: plain, run-length (RLE), dictionary, delta and frame-of-reference
// bit packing. Vertica's execution engine "operates directly on encoded
// data" (paper §2.1); here the scan decodes blocks, but the encoding
// choices and their compression behaviour on sorted data are reproduced.
//
// An encoded block is self-describing: a one-byte encoding tag, a null
// bitmap section, then the payload. Decode needs only the logical type.
package colenc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"

	"eon/internal/types"
)

// Encoding identifies a block encoding scheme.
type Encoding uint8

// The supported encodings.
const (
	Plain Encoding = iota
	RLE
	Dict
	Delta
	FOR // frame-of-reference bit packing for integers
)

// String names the encoding.
func (e Encoding) String() string {
	switch e {
	case Plain:
		return "PLAIN"
	case RLE:
		return "RLE"
	case Dict:
		return "DICT"
	case Delta:
		return "DELTA"
	case FOR:
		return "FOR"
	}
	return fmt.Sprintf("ENC(%d)", uint8(e))
}

// ErrCorrupt is returned when a block fails to decode.
var ErrCorrupt = errors.New("colenc: corrupt block")

type buf struct{ b []byte }

func (w *buf) uvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	w.b = append(w.b, tmp[:n]...)
}

func (w *buf) varint(v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	w.b = append(w.b, tmp[:n]...)
}

func (w *buf) bytes(p []byte) { w.b = append(w.b, p...) }
func (w *buf) byte(c byte)    { w.b = append(w.b, c) }
func (w *buf) f64(f float64)  { w.b = binary.LittleEndian.AppendUint64(w.b, math.Float64bits(f)) }
func (w *buf) str(s string)   { w.uvarint(uint64(len(s))); w.b = append(w.b, s...) }

type rd struct {
	b   []byte
	pos int
	err error
}

func (r *rd) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		r.err = ErrCorrupt
		return 0
	}
	r.pos += n
	return v
}

func (r *rd) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.pos:])
	if n <= 0 {
		r.err = ErrCorrupt
		return 0
	}
	r.pos += n
	return v
}

func (r *rd) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.b) {
		r.err = ErrCorrupt
		return 0
	}
	c := r.b[r.pos]
	r.pos++
	return c
}

func (r *rd) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.b) {
		r.err = ErrCorrupt
		return nil
	}
	p := r.b[r.pos : r.pos+n]
	r.pos += n
	return p
}

func (r *rd) f64() float64 {
	p := r.take(8)
	if r.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(p))
}

func (r *rd) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.pos) {
		r.err = ErrCorrupt
		return ""
	}
	return string(r.take(int(n)))
}

// writeNulls serializes the null positions of v: uvarint count followed by
// delta-encoded positions.
func writeNulls(w *buf, v *types.Vector) {
	var positions []int
	if v.Nulls != nil {
		for i, isNull := range v.Nulls {
			if isNull {
				positions = append(positions, i)
			}
		}
	}
	w.uvarint(uint64(len(positions)))
	prev := 0
	for _, p := range positions {
		w.uvarint(uint64(p - prev))
		prev = p
	}
}

func readNulls(r *rd, n int) []bool {
	cnt := r.uvarint()
	if r.err != nil || cnt == 0 {
		return nil
	}
	nulls := make([]bool, n)
	pos := 0
	for i := uint64(0); i < cnt; i++ {
		pos += int(r.uvarint())
		if r.err != nil || pos >= n {
			r.err = ErrCorrupt
			return nil
		}
		nulls[pos] = true
	}
	return nulls
}

// Choose picks a reasonable encoding for the vector. sorted indicates the
// vector is in sort order (the ROS writer knows this from the projection's
// sort key), which favours RLE and delta.
func Choose(v *types.Vector, sorted bool) Encoding {
	n := v.Len()
	if n == 0 {
		return Plain
	}
	switch v.Typ.Physical() {
	case types.Int64:
		if sorted {
			if runFraction(v) > 0.5 {
				return RLE
			}
			return Delta
		}
		if runFraction(v) > 0.5 {
			return RLE
		}
		return FOR
	case types.Varchar:
		card := distinctCap(v, n/4+1)
		if card <= n/4 {
			if sorted && runFraction(v) > 0.5 {
				return RLE
			}
			return Dict
		}
		return Plain
	case types.Bool:
		return RLE
	default:
		if sorted && runFraction(v) > 0.5 {
			return RLE
		}
		return Plain
	}
}

// runFraction estimates the fraction of adjacent pairs that are equal.
func runFraction(v *types.Vector) float64 {
	n := v.Len()
	if n < 2 {
		return 0
	}
	eq := 0
	for i := 1; i < n; i++ {
		if v.Datum(i).Equal(v.Datum(i - 1)) {
			eq++
		}
	}
	return float64(eq) / float64(n-1)
}

// distinctCap counts distinct values up to a cap (then returns cap+1).
func distinctCap(v *types.Vector, cap int) int {
	seen := make(map[string]struct{}, cap)
	for i := 0; i < v.Len(); i++ {
		seen[v.Datum(i).String()] = struct{}{}
		if len(seen) > cap {
			return cap + 1
		}
	}
	return len(seen)
}

// Encode serializes the vector with the given encoding. Encodings that do
// not apply to the vector's type fall back to Plain.
func Encode(v *types.Vector, enc Encoding) []byte {
	phys := v.Typ.Physical()
	switch enc {
	case Delta, FOR:
		if phys != types.Int64 {
			enc = Plain
		}
	case Dict:
		if phys != types.Varchar {
			enc = Plain
		}
	}
	// The bit-packing accumulator handles widths up to 56 bits; wider
	// frames gain nothing over plain varints anyway.
	if enc == FOR && forWidth(v.Ints) > 56 {
		enc = Plain
	}
	w := &buf{}
	w.byte(byte(enc))
	w.uvarint(uint64(v.Len()))
	writeNulls(w, v)
	switch enc {
	case Plain:
		encodePlain(w, v)
	case RLE:
		encodeRLE(w, v)
	case Dict:
		encodeDict(w, v)
	case Delta:
		encodeDelta(w, v)
	case FOR:
		encodeFOR(w, v)
	}
	return w.b
}

// Decode deserializes a block produced by Encode into a vector of logical
// type t.
func Decode(data []byte, t types.Type) (*types.Vector, error) {
	r := &rd{b: data}
	enc := Encoding(r.byte())
	n := int(r.uvarint())
	if r.err != nil {
		return nil, r.err
	}
	nulls := readNulls(r, n)
	v := types.NewVector(t, n)
	v.Nulls = nulls
	switch enc {
	case Plain:
		decodePlain(r, v, n)
	case RLE:
		decodeRLE(r, v, n)
	case Dict:
		decodeDict(r, v, n)
	case Delta:
		decodeDelta(r, v, n)
	case FOR:
		decodeFOR(r, v, n)
	default:
		return nil, fmt.Errorf("colenc: unknown encoding tag %d: %w", enc, ErrCorrupt)
	}
	if r.err != nil {
		return nil, r.err
	}
	if v.Len() != n {
		return nil, ErrCorrupt
	}
	return v, nil
}

func encodePlain(w *buf, v *types.Vector) {
	switch v.Typ.Physical() {
	case types.Int64:
		for _, x := range v.Ints {
			w.varint(x)
		}
	case types.Float64:
		for _, f := range v.Floats {
			w.f64(f)
		}
	case types.Varchar:
		for _, s := range v.Strs {
			w.str(s)
		}
	case types.Bool:
		for _, b := range v.Bools {
			if b {
				w.byte(1)
			} else {
				w.byte(0)
			}
		}
	}
}

func decodePlain(r *rd, v *types.Vector, n int) {
	switch v.Typ.Physical() {
	case types.Int64:
		for i := 0; i < n; i++ {
			v.Ints = append(v.Ints, r.varint())
		}
	case types.Float64:
		for i := 0; i < n; i++ {
			v.Floats = append(v.Floats, r.f64())
		}
	case types.Varchar:
		for i := 0; i < n; i++ {
			v.Strs = append(v.Strs, r.str())
		}
	case types.Bool:
		for i := 0; i < n; i++ {
			v.Bools = append(v.Bools, r.byte() != 0)
		}
	}
}

func encodeRLE(w *buf, v *types.Vector) {
	n := v.Len()
	i := 0
	for i < n {
		j := i + 1
		for j < n && rawEqual(v, j, i) {
			j++
		}
		w.uvarint(uint64(j - i))
		writeRaw(w, v, i)
		i = j
	}
}

func decodeRLE(r *rd, v *types.Vector, n int) {
	for v.Len() < n {
		run := int(r.uvarint())
		if r.err != nil || run <= 0 || v.Len()+run > n {
			r.err = ErrCorrupt
			return
		}
		readRawRun(r, v, run)
	}
}

// rawEqual compares physical values ignoring nullness (nulls are stored in
// the bitmap; their payload slot is the zero value, which still run-length
// encodes correctly).
func rawEqual(v *types.Vector, i, j int) bool {
	switch v.Typ.Physical() {
	case types.Int64:
		return v.Ints[i] == v.Ints[j]
	case types.Float64:
		return math.Float64bits(v.Floats[i]) == math.Float64bits(v.Floats[j])
	case types.Varchar:
		return v.Strs[i] == v.Strs[j]
	case types.Bool:
		return v.Bools[i] == v.Bools[j]
	}
	return false
}

func writeRaw(w *buf, v *types.Vector, i int) {
	switch v.Typ.Physical() {
	case types.Int64:
		w.varint(v.Ints[i])
	case types.Float64:
		w.f64(v.Floats[i])
	case types.Varchar:
		w.str(v.Strs[i])
	case types.Bool:
		if v.Bools[i] {
			w.byte(1)
		} else {
			w.byte(0)
		}
	}
}

func readRawRun(r *rd, v *types.Vector, run int) {
	switch v.Typ.Physical() {
	case types.Int64:
		x := r.varint()
		for k := 0; k < run; k++ {
			v.Ints = append(v.Ints, x)
		}
	case types.Float64:
		f := r.f64()
		for k := 0; k < run; k++ {
			v.Floats = append(v.Floats, f)
		}
	case types.Varchar:
		s := r.str()
		for k := 0; k < run; k++ {
			v.Strs = append(v.Strs, s)
		}
	case types.Bool:
		b := r.byte() != 0
		for k := 0; k < run; k++ {
			v.Bools = append(v.Bools, b)
		}
	}
}

func encodeDict(w *buf, v *types.Vector) {
	index := make(map[string]uint64)
	var dict []string
	codes := make([]uint64, 0, v.Len())
	for _, s := range v.Strs {
		c, ok := index[s]
		if !ok {
			c = uint64(len(dict))
			index[s] = c
			dict = append(dict, s)
		}
		codes = append(codes, c)
	}
	w.uvarint(uint64(len(dict)))
	for _, s := range dict {
		w.str(s)
	}
	for _, c := range codes {
		w.uvarint(c)
	}
}

func decodeDict(r *rd, v *types.Vector, n int) {
	dn := int(r.uvarint())
	if r.err != nil || dn < 0 {
		r.err = ErrCorrupt
		return
	}
	dict := make([]string, dn)
	for i := range dict {
		dict[i] = r.str()
	}
	for i := 0; i < n; i++ {
		c := r.uvarint()
		if r.err != nil {
			return
		}
		if c >= uint64(dn) {
			r.err = ErrCorrupt
			return
		}
		v.Strs = append(v.Strs, dict[c])
	}
}

func encodeDelta(w *buf, v *types.Vector) {
	prev := int64(0)
	for _, x := range v.Ints {
		w.varint(x - prev)
		prev = x
	}
}

func decodeDelta(r *rd, v *types.Vector, n int) {
	prev := int64(0)
	for i := 0; i < n; i++ {
		prev += r.varint()
		v.Ints = append(v.Ints, prev)
	}
}

// forWidth returns the bit width needed to frame-of-reference encode xs.
func forWidth(xs []int64) int {
	if len(xs) == 0 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return bits.Len64(uint64(hi - lo))
}

func encodeFOR(w *buf, v *types.Vector) {
	n := len(v.Ints)
	if n == 0 {
		return
	}
	lo, hi := v.Ints[0], v.Ints[0]
	for _, x := range v.Ints {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	span := uint64(hi - lo)
	width := bits.Len64(span)
	w.varint(lo)
	w.byte(byte(width))
	if width == 0 {
		return
	}
	var acc uint64
	accBits := 0
	for _, x := range v.Ints {
		val := uint64(x - lo)
		acc |= val << accBits
		accBits += width
		for accBits >= 8 {
			w.byte(byte(acc))
			acc >>= 8
			accBits -= 8
		}
	}
	if accBits > 0 {
		w.byte(byte(acc))
	}
}

func decodeFOR(r *rd, v *types.Vector, n int) {
	if n == 0 {
		return
	}
	lo := r.varint()
	width := int(r.byte())
	if r.err != nil {
		return
	}
	if width == 0 {
		for i := 0; i < n; i++ {
			v.Ints = append(v.Ints, lo)
		}
		return
	}
	if width > 56 { // the encoder never produces wider frames
		r.err = ErrCorrupt
		return
	}
	totalBits := n * width
	nbytes := (totalBits + 7) / 8
	p := r.take(nbytes)
	if r.err != nil {
		return
	}
	var acc uint64
	accBits := 0
	pos := 0
	mask := uint64(1)<<uint(width) - 1
	if width == 64 {
		mask = ^uint64(0)
	}
	for i := 0; i < n; i++ {
		for accBits < width {
			if pos >= len(p) {
				r.err = ErrCorrupt
				return
			}
			acc |= uint64(p[pos]) << accBits
			pos++
			accBits += 8
		}
		v.Ints = append(v.Ints, lo+int64(acc&mask))
		acc >>= uint(width)
		accBits -= width
	}
}
