package core

import (
	"fmt"
	"time"

	"eon/internal/catalog"
	"eon/internal/exec"
	"eon/internal/expr"
	"eon/internal/obs"
	"eon/internal/shard"
	"eon/internal/sql"
	"eon/internal/storage"
	"eon/internal/tuplemover"
	"eon/internal/types"
)

// RunMoveout converts WOS buffers to ROS containers on every node
// (Enterprise; §2.3). It returns the number of containers written.
func (db *DB) RunMoveout() (int, error) {
	if db.mode != ModeEnterprise {
		return 0, nil // Eon mode has no WOS (§5.1, §6.2)
	}
	init, err := db.anyUpNode()
	if err != nil {
		return 0, err
	}
	ctx := db.Context()
	moved := 0
	for _, n := range db.Nodes() {
		if !n.Up() || n.wos == nil {
			continue
		}
		for _, projOID := range n.wos.Projections() {
			snap := init.catalog.Snapshot()
			po, ok := snap.Get(projOID)
			if !ok {
				n.wos.Drain(projOID)
				continue
			}
			proj := po.(*catalog.Projection)
			to, ok := snap.Get(proj.TableOID)
			if !ok {
				continue
			}
			tbl := to.(*catalog.Table)
			batch := n.wos.Drain(projOID)
			if batch == nil {
				continue
			}
			projSchema := physicalSchema(tbl, proj)
			txn := init.catalog.Begin()
			parts, err := db.splitProjBatchByPartition(tbl, projSchema, batch)
			if err != nil {
				return moved, err
			}
			for partKey, pb := range parts {
				shardBatches := map[int]*types.Batch{}
				if proj.Replicated() {
					shardBatches[catalog.ReplicaShard] = pb
				} else {
					segIdx, err := columnPositions(projSchema, proj.SegmentCols)
					if err != nil {
						return moved, err
					}
					for shardIdx, sb := range exec.PartitionByRing(pb, segIdx, db.ring) {
						if sb != nil && sb.NumRows() > 0 {
							shardBatches[shardIdx] = sb
						}
					}
				}
				for shardIdx, sb := range shardBatches {
					built, err := storage.BuildContainer(init.catalog, n.inst, storage.WriteSpec{
						Projection: proj, Schema: projSchema,
						ShardIndex: shardIdx, PartitionKey: partKey,
						OwnerNode: n.name, BundleThreshold: db.cfg.BundleThreshold,
						CreateVersion: snap.Version() + 1,
					}, sb)
					if err != nil {
						return moved, err
					}
					if built == nil {
						continue
					}
					if err := db.persistFiles(ctx, n, built.Files, shardIdx, db.neverCacheTable(tbl.Name)); err != nil {
						return moved, err
					}
					txn.Put(built.Meta)
					moved++
				}
			}
			if txn.Pending() {
				if _, err := db.commit(init, txn, nil); err != nil {
					return moved, err
				}
			}
		}
	}
	return moved, nil
}

// splitProjBatchByPartition groups a projection-ordered batch by the
// table partition expression (bound against the projection schema).
func (db *DB) splitProjBatchByPartition(tbl *catalog.Table, projSchema types.Schema, batch *types.Batch) (map[string]*types.Batch, error) {
	if tbl.PartitionExpr == "" {
		return map[string]*types.Batch{"": batch}, nil
	}
	pe, err := sql.ParseExpr(tbl.PartitionExpr)
	if err != nil {
		return nil, err
	}
	if err := expr.Bind(pe, projSchema); err != nil {
		// Projection lacks the partition columns; treat as unpartitioned.
		return map[string]*types.Batch{"": batch}, nil
	}
	groups := map[string][]int{}
	for i := 0; i < batch.NumRows(); i++ {
		v, err := expr.EvalRow(pe, batch.Row(i))
		if err != nil {
			return nil, err
		}
		groups[v.String()] = append(groups[v.String()], i)
	}
	out := make(map[string]*types.Batch, len(groups))
	for k, idx := range groups {
		out[k] = batch.Gather(idx)
	}
	return out, nil
}

// MergeoutStats reports one mergeout pass.
type MergeoutStats struct {
	Jobs             int
	ContainersMerged int
	RowsPurged       int64
}

// RunMergeout runs one tuple-mover mergeout pass over every projection.
// In Eon mode a coordinator per shard selects jobs — "a single
// coordinator is selected to ensure that conflicting mergeout jobs are
// not executed concurrently" — and the job's commit informs the other
// subscribers (§6.2). In Enterprise mode each node compacts its own
// storage independently.
func (db *DB) RunMergeout() (MergeoutStats, error) {
	var stats MergeoutStats
	init, err := db.anyUpNode()
	if err != nil {
		return stats, err
	}
	snap := init.catalog.Snapshot()

	var coordinators map[int]string
	if db.mode == ModeEon {
		coordinators = shard.MergeoutCoordinators(snap, db.UpNodes(), "")
	}

	for _, tbl := range snap.Tables() {
		for _, proj := range snap.ProjectionsOf(tbl.OID) {
			// Group containers per shard (Eon) or per (owner, shard)
			// (Enterprise), mirroring who may run the job.
			groups := map[string][]*catalog.StorageContainer{}
			groupNode := map[string]*Node{}
			for _, sc := range snap.ContainersOf(proj.OID, catalog.GlobalShard) {
				var key string
				var runner *Node
				// Partition separation survives compaction: containers of
				// different partition keys never merge (§2.1).
				if db.mode == ModeEnterprise {
					key = fmt.Sprintf("%s/%d/%s", sc.OwnerNode, sc.ShardIndex, sc.PartitionKey)
					if n, ok := db.Node(sc.OwnerNode); ok && n.Up() {
						runner = n
					}
				} else {
					key = fmt.Sprintf("%d/%s", sc.ShardIndex, sc.PartitionKey)
					coordName := coordinators[sc.ShardIndex]
					if sc.ShardIndex == catalog.ReplicaShard {
						coordName = init.name
					}
					if n, ok := db.Node(coordName); ok && n.Up() {
						runner = n
					}
				}
				if runner == nil {
					continue
				}
				groups[key] = append(groups[key], sc)
				groupNode[key] = runner
			}
			for key, containers := range groups {
				dvCounts := map[catalog.OID]int64{}
				for _, sc := range containers {
					for _, dv := range snap.DeleteVectorsOf(sc.OID) {
						dvCounts[sc.OID] += dv.Count
					}
				}
				jobs := tuplemover.SelectJobs(containers, dvCounts, db.cfg.Mergeout)
				for _, job := range jobs {
					jobStart := time.Now()
					purged, err := db.executeMergeJob(groupNode[key], tbl, proj, job)
					db.mergeoutNS.ObserveDuration(time.Since(jobStart))
					db.mergeoutJobs.Inc()
					db.dcMergeouts.Emit(obs.DCEvent{
						Node: groupNode[key].name, A: tbl.Name, B: proj.Name,
						V1: int64(len(job.Containers)), V2: purged,
						V3: int64(time.Since(jobStart)),
					})
					if err != nil {
						return stats, err
					}
					stats.Jobs++
					stats.ContainersMerged += len(job.Containers)
					stats.RowsPurged += purged
				}
			}
		}
	}
	return stats, nil
}

// executeMergeJob reads the input containers (dropping deleted rows),
// writes one merged container, and commits the swap. Input containers
// and their delete vectors are dropped in the same transaction; their
// files become deletion candidates (§6.5).
func (db *DB) executeMergeJob(runner *Node, tbl *catalog.Table, proj *catalog.Projection, job tuplemover.Job) (int64, error) {
	ctx := db.Context()
	init, err := db.anyUpNode()
	if err != nil {
		return 0, err
	}
	txn := init.catalog.Begin()
	snap := txn.Base()
	projSchema := physicalSchema(tbl, proj)
	fetch := db.fetchFunc(runner, false)

	merged := types.NewBatch(projSchema, 0)
	var purged int64
	shardIdx := job.Containers[0].ShardIndex
	partKey := job.Containers[0].PartitionKey
	for _, sc := range job.Containers {
		// Re-read through the transaction so a concurrent drop conflicts.
		cur, ok := txn.Get(sc.OID)
		if !ok {
			return 0, fmt.Errorf("core: container %d vanished before mergeout", sc.OID)
		}
		sc = cur.(*catalog.StorageContainer)
		rows, err := storage.ReadColumns(ctx, sc, projSchema, fetch, db.scanConc())
		if err != nil {
			return 0, err
		}
		var dvLists [][]int64
		for _, dv := range snap.DeleteVectorsOf(sc.OID) {
			if db.mode == ModeEnterprise && dv.OwnerNode != runner.name {
				continue
			}
			data, err := fetch(ctx, dv.File.Path)
			if err != nil {
				return 0, err
			}
			positions, err := storage.ReadDeleteVector(data)
			if err != nil {
				return 0, err
			}
			dvLists = append(dvLists, positions)
			txn.Delete(dv.OID)
		}
		deletes := storage.NewDeleteSet(dvLists...)
		live := deletes.LivePositions(0, rows.NumRows())
		purged += int64(rows.NumRows() - len(live))
		if len(live) < rows.NumRows() {
			rows = rows.Gather(live)
		}
		merged.AppendBatch(rows)
		txn.Delete(sc.OID)
	}

	// Live aggregate projections re-aggregate on compaction: partial
	// groups from separate loads fold into one row per group.
	if proj.IsLiveAggregate() {
		merged, err = aggregateForLiveProjection(proj, projSchema, merged, true)
		if err != nil {
			return 0, err
		}
	}

	owner := ""
	if db.mode == ModeEnterprise {
		owner = runner.name
	}
	built, err := storage.BuildContainer(init.catalog, runner.inst, storage.WriteSpec{
		Projection: proj, Schema: projSchema,
		ShardIndex: shardIdx, PartitionKey: partKey,
		OwnerNode: owner, BundleThreshold: db.cfg.BundleThreshold,
		CreateVersion: snap.Version() + 1,
	}, merged)
	if err != nil {
		return 0, err
	}
	if built != nil {
		// Mergeout output goes into the cache and shared storage (§5.2).
		if err := db.persistFiles(ctx, runner, built.Files, shardIdx, db.neverCacheTable(tbl.Name)); err != nil {
			return 0, err
		}
		txn.Put(built.Meta)
	}
	rec, err := db.commit(init, txn, nil)
	if err != nil {
		return 0, err
	}
	// Dropped inputs free their files only when unreferenced (copied
	// tables share files, §6.5).
	after := init.catalog.Snapshot()
	for _, sc := range job.Containers {
		db.queueContainerFilesIfUnreferenced(after, sc, snap.DeleteVectorsOf(sc.OID), rec.Version)
	}
	return purged, nil
}
