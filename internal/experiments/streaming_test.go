package experiments

import (
	"runtime"
	"testing"
	"time"

	"eon/internal/core"
	"eon/internal/objstore"
	"eon/internal/types"
	"eon/internal/workload"
)

// runExecDiff executes every workload query on the materialized
// escape-hatch executor (the reference) and on the streaming pipeline
// (the default) and compares results. With exact set, rows must be
// byte-identical positionally: the streaming executor gathers node
// streams in the same sorted order the materialized gather visits them,
// and every operator chain mirrors the materialized one. Without it,
// rows are compared as multisets with floats rounded to 9 significant
// digits, for the same reason runEngineDiff does: the per-query seeded
// shard assignment regroups rows across nodes between runs.
func runExecDiff(t *testing.T, db *core.DB, exact bool) {
	t.Helper()
	mat := db.NewSession()
	mat.MaterializedExec = true
	str := db.NewSession()

	for _, q := range allQueries() {
		want, err := mat.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s: materialized executor: %v", q.Name, err)
		}
		if st := mat.LastExecStats(); st.Streaming {
			t.Errorf("%s: materialized session ran the streaming executor", q.Name)
		}
		got, err := str.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s: streaming executor: %v", q.Name, err)
		}
		if st := str.LastExecStats(); !st.Streaming {
			t.Errorf("%s: streaming session fell back to the materialized executor", q.Name)
		}

		if got.NumRows() != want.NumRows() {
			t.Fatalf("%s: %d rows streaming vs %d materialized", q.Name, got.NumRows(), want.NumRows())
		}
		wantRows, gotRows := want.Rows(), got.Rows()
		if exact {
			for i := range wantRows {
				for c := range wantRows[i] {
					wd, gd := wantRows[i][c], gotRows[i][c]
					if wd.Null != gd.Null || (!wd.Null && wd.Compare(gd) != 0) {
						t.Fatalf("%s: row %d col %d: streaming=%v materialized=%v", q.Name, i, c, gd, wd)
					}
				}
			}
			continue
		}
		counts := map[string]int{}
		for _, r := range wantRows {
			counts[renderRow(r)]++
		}
		for _, r := range gotRows {
			key := renderRow(r)
			if counts[key] == 0 {
				t.Fatalf("%s: streaming row %s not produced by the materialized executor", q.Name, key)
			}
			counts[key]--
		}
	}
}

// TestStreamingMatchesMaterializedSingleNode pins every shard to one
// node, making both executors fully deterministic, and requires
// byte-identical results (values, NULLs, row order) on every workload
// query.
func TestStreamingMatchesMaterializedSingleNode(t *testing.T) {
	db, _, err := NewEonCluster(1, 3, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadTPCH(db, 0.02); err != nil {
		t.Fatal(err)
	}
	runExecDiff(t, db, true)
}

// TestStreamingMatchesMaterializedCluster runs the same diff on a
// three-node cluster (distributed scans, two-phase aggregation,
// broadcast and reshuffle joins flowing through netsim streams), with
// rows compared as multisets because the seeded per-query shard
// assignment regroups rows between runs.
func TestStreamingMatchesMaterializedCluster(t *testing.T) {
	db, _, err := NewEonCluster(3, 3, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadTPCH(db, 0.02); err != nil {
		t.Fatal(err)
	}
	runExecDiff(t, db, false)
}

// TestLimitPushdownShipsFewerBytes asserts that LIMIT without ORDER BY
// caps each node's stream before it crosses the interconnect: the bytes
// shipped for a LIMIT query must be a small fraction of the bytes the
// same query ships without the LIMIT. Both executors are checked — the
// materialized path via the per-node limit pushdown, the streaming path
// via early termination of the gather streams.
func TestLimitPushdownShipsFewerBytes(t *testing.T) {
	db, _, err := NewEonCluster(3, 3, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadTPCH(db, 0.02); err != nil {
		t.Fatal(err)
	}
	const fullQ = `SELECT l_orderkey, l_extendedprice FROM lineitem`
	const limitQ = fullQ + ` LIMIT 8`

	for _, mode := range []struct {
		name         string
		materialized bool
	}{{"streaming", false}, {"materialized", true}} {
		s := db.NewSession()
		s.MaterializedExec = mode.materialized

		db.Net().ResetStats()
		res, err := s.Query(fullQ)
		if err != nil {
			t.Fatalf("%s: full scan: %v", mode.name, err)
		}
		fullRows := res.NumRows()
		fullBytes := db.Net().Stats().Bytes
		if fullRows == 0 || fullBytes == 0 {
			t.Fatalf("%s: full scan shipped nothing (rows=%d bytes=%d)", mode.name, fullRows, fullBytes)
		}

		db.Net().ResetStats()
		res, err = s.Query(limitQ)
		if err != nil {
			t.Fatalf("%s: limit: %v", mode.name, err)
		}
		limitBytes := db.Net().Stats().Bytes
		if res.NumRows() != 8 {
			t.Fatalf("%s: limit returned %d rows, want 8", mode.name, res.NumRows())
		}
		if limitBytes*4 >= fullBytes {
			t.Errorf("%s: LIMIT shipped %d bytes vs %d for the full scan (want <1/4)",
				mode.name, limitBytes, fullBytes)
		}
	}
}

// manyContainerDB builds a single-node cluster whose one table is
// spread over many small containers (each load creates one container
// per shard), with a small scan fan-out so the streaming scan's
// prefetch window is a few containers wide.
func manyContainerDB(t *testing.T) (*core.DB, int) {
	t.Helper()
	sim := objstore.NewSim(objstore.NewMem(), SharedStorageSim(1))
	db, err := core.Create(core.Config{
		Mode:            core.ModeEon,
		Nodes:           nodeSpecs(1),
		ShardCount:      3,
		Shared:          sim,
		Net:             ClusterNet(),
		ScanConcurrency: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	for _, q := range []string{
		`CREATE TABLE ev (k INTEGER, v INTEGER)`,
		`CREATE PROJECTION ev_p AS SELECT * FROM ev ORDER BY k SEGMENTED BY HASH(k) ALL NODES`,
	} {
		if _, err := s.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	schema := types.Schema{{Name: "k", Type: types.Int64}, {Name: "v", Type: types.Int64}}
	const loads, perLoad = 40, 300
	id := 0
	for l := 0; l < loads; l++ {
		batch := types.NewBatch(schema, perLoad)
		for r := 0; r < perLoad; r++ {
			id++
			batch.AppendRow(types.Row{types.NewInt(int64(id)), types.NewInt(int64(id % 17))})
		}
		if err := db.LoadRows("ev", batch); err != nil {
			t.Fatal(err)
		}
	}
	return db, loads * perLoad
}

// TestStreamingLimitStopsScanEarly asserts early termination: a LIMIT
// query on the streaming executor must stop pulling — and therefore
// stop scanning — long before the table is exhausted. The scan's
// in-flight window is bounded (ScanConcurrency producers plus a
// two-batch channel), so rows decoded stay far below the full count.
func TestStreamingLimitStopsScanEarly(t *testing.T) {
	db, totalRows := manyContainerDB(t)
	s := db.NewSession()

	res, err := s.Query(`SELECT k, v FROM ev`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != totalRows {
		t.Fatalf("full scan returned %d rows, want %d", res.NumRows(), totalRows)
	}
	full := s.LastScanStats().RowsScanned
	if full < int64(totalRows) {
		t.Fatalf("full scan decoded %d rows, want >= %d", full, totalRows)
	}

	res, err = s.Query(`SELECT k, v FROM ev LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 5 {
		t.Fatalf("limit returned %d rows, want 5", res.NumRows())
	}
	if st := s.LastExecStats(); !st.Streaming {
		t.Fatal("limit query did not run on the streaming executor")
	}
	early := s.LastScanStats().RowsScanned
	if early*2 >= full {
		t.Errorf("LIMIT 5 decoded %d of %d rows; early termination should scan far less than half", early, full)
	}
}

// TestQueryMemoryBudgetSpillsAndMatches runs a wide aggregation twice:
// unbudgeted (groups held in memory) and under a budget far smaller
// than the group state. The budgeted run must spill, keep its peak
// governed memory at or under the budget, return byte-identical rows,
// and leave the exec.mem_bytes gauge at zero.
func TestQueryMemoryBudgetSpillsAndMatches(t *testing.T) {
	db, _, err := NewEonCluster(1, 3, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadTPCH(db, 0.02); err != nil {
		t.Fatal(err)
	}
	// Integer-only aggregates so group contents are order-independent;
	// ORDER BY pins the output order for positional comparison.
	const q = `SELECT l_orderkey, COUNT(*) AS n, SUM(l_partkey) AS s
		FROM lineitem GROUP BY l_orderkey ORDER BY l_orderkey`

	free := db.NewSession()
	want, err := free.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	freeStats := free.LastExecStats()
	if !freeStats.Streaming || freeStats.SpillCount != 0 {
		t.Fatalf("unbudgeted run: stats %+v, want streaming with no spills", freeStats)
	}

	const budget = 32 << 10
	tight := db.NewSession()
	tight.MemoryBudget = budget
	got, err := tight.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	st := tight.LastExecStats()
	if !st.Streaming {
		t.Fatal("budgeted run did not use the streaming executor")
	}
	if st.SpillCount == 0 || st.SpillBytes == 0 {
		t.Fatalf("budgeted run never spilled: stats %+v", st)
	}
	if st.PeakMemBytes <= 0 || st.PeakMemBytes > budget {
		t.Fatalf("peak governed memory %d outside (0, %d]", st.PeakMemBytes, budget)
	}

	if got.NumRows() != want.NumRows() {
		t.Fatalf("%d rows budgeted vs %d unbudgeted", got.NumRows(), want.NumRows())
	}
	wantRows, gotRows := want.Rows(), got.Rows()
	for i := range wantRows {
		for c := range wantRows[i] {
			wd, gd := wantRows[i][c], gotRows[i][c]
			if wd.Null != gd.Null || (!wd.Null && wd.Compare(gd) != 0) {
				t.Fatalf("row %d col %d: budgeted=%v unbudgeted=%v", i, c, gd, wd)
			}
		}
	}

	if g := db.Metrics().Gauges["exec.mem_bytes"]; g != 0 {
		t.Errorf("exec.mem_bytes gauge = %d after queries, want 0", g)
	}
	t.Logf("unbudgeted peak=%dB; budget=%dB -> peak=%dB spills=%d spillBytes=%d",
		freeStats.PeakMemBytes, budget, st.PeakMemBytes, st.SpillCount, st.SpillBytes)
}

// TestStreamingCancellationLeaksNothing cancels queries mid-stream —
// via session deadlines over cold shared storage with injected faults —
// and asserts the pipeline tears down completely: every goroutine
// exits, every span is ended (no dangling spans in the profile), and
// the execution slots are released so later queries still run.
func TestStreamingCancellationLeaksNothing(t *testing.T) {
	simCfg := SharedStorageSim(1)
	simCfg.Faults = &objstore.FaultSchedule{
		Seed: 42,
		// A permanent low-rate transient-failure window: loads retry
		// through it, and cancelled queries tear down mid-retry.
		Windows: []objstore.FaultWindow{{OpRange: objstore.OpRange{From: 0, To: 1 << 40}, Rate: 0.05}},
	}
	sim := objstore.NewSim(objstore.NewMem(), simCfg)
	db, err := core.Create(core.Config{
		Mode:              core.ModeEon,
		Nodes:             nodeSpecs(3),
		ShardCount:        3,
		ReplicationFactor: 2,
		Shared:            sim,
		Net:               ClusterNet(),
		ExecSlots:         8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := loadTPCH(db, 0.02); err != nil {
		t.Fatal(err)
	}

	base := runtime.NumGoroutine()
	queries := []string{workload.DashboardQuery, workload.NodeDownQuery}
	for _, timeout := range []time.Duration{200 * time.Microsecond, time.Millisecond, 4 * time.Millisecond} {
		s := db.NewSession()
		s.Trace = true
		s.Timeout = timeout
		s.BypassCache = true // keep scans cold so the deadline lands mid-scan
		for i, q := range queries {
			_, err := s.Query(q)
			// The query may finish under the longer deadlines; only the
			// teardown invariants matter here.
			_ = err
			if p := s.LastProfile(); p == nil {
				t.Fatalf("timeout %v query %d: tracing on but no profile", timeout, i)
			} else if p.Dangling != 0 {
				t.Fatalf("timeout %v query %d: %d dangling spans", timeout, i, p.Dangling)
			}
		}
	}

	// Every pipeline goroutine (scan drivers, transfer drivers, channel
	// bridges) must have exited.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+3 {
			break
		}
		if time.Now().Before(deadline) {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutines leaked: %d now vs %d before cancellations\n%s",
			runtime.NumGoroutine(), base, buf[:n])
	}

	// Slots must have been released: a fresh, un-deadlined session runs
	// the whole workload to completion.
	s := db.NewSession()
	for _, q := range queries {
		if _, err := s.Query(q); err != nil {
			t.Fatalf("post-cancellation query failed (leaked slots?): %v", err)
		}
	}
	if g := db.Metrics().Gauges["exec.mem_bytes"]; g != 0 {
		t.Errorf("exec.mem_bytes gauge = %d after cancellations, want 0", g)
	}
}
