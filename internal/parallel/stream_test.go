package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestStreamOrderedDeliversInOrder(t *testing.T) {
	for _, conc := range []int{1, 2, 4, 16} {
		const n = 100
		var got []int
		err := StreamOrdered(context.Background(), n, conc,
			func(ctx context.Context, worker, idx int) (int, error) {
				return idx * 3, nil
			},
			func(idx int, v int) error {
				got = append(got, v)
				return nil
			})
		if err != nil {
			t.Fatalf("conc=%d: %v", conc, err)
		}
		if len(got) != n {
			t.Fatalf("conc=%d: consumed %d of %d items", conc, len(got), n)
		}
		for i, v := range got {
			if v != i*3 {
				t.Fatalf("conc=%d: item %d = %d, want %d", conc, i, v, i*3)
			}
		}
	}
}

func TestStreamOrderedZeroItems(t *testing.T) {
	called := false
	err := StreamOrdered(context.Background(), 0, 8,
		func(ctx context.Context, worker, idx int) (int, error) { called = true; return 0, nil },
		func(idx int, v int) error { called = true; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("callbacks invoked with n=0")
	}
}

// TestStreamOrderedBoundsWindow checks backpressure: with a consumer that
// never returns until released, no more than conc items can ever have
// been produced, no matter how many workers try to run ahead.
func TestStreamOrderedBoundsWindow(t *testing.T) {
	const conc = 3
	var produced atomic.Int64
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- StreamOrdered(context.Background(), 50, conc,
			func(ctx context.Context, worker, idx int) (int, error) {
				produced.Add(1)
				return idx, nil
			},
			func(idx int, v int) error {
				<-release
				return nil
			})
	}()
	// Give producers ample time to run ahead if they (incorrectly) can.
	time.Sleep(20 * time.Millisecond)
	if p := produced.Load(); p > conc {
		t.Fatalf("produced %d items with window %d and a stalled consumer", p, conc)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if p := produced.Load(); p != 50 {
		t.Fatalf("produced %d of 50 after release", p)
	}
}

func TestStreamOrderedProducerErrorStopsStream(t *testing.T) {
	boom := errors.New("boom")
	var consumed atomic.Int64
	err := StreamOrdered(context.Background(), 1000, 4,
		func(ctx context.Context, worker, idx int) (int, error) {
			if idx == 7 {
				return 0, boom
			}
			return idx, nil
		},
		func(idx int, v int) error {
			consumed.Add(1)
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c := consumed.Load(); c != 7 {
		t.Fatalf("consumed %d items before error at index 7, want 7", c)
	}
}

func TestStreamOrderedConsumerErrorStopsStream(t *testing.T) {
	boom := errors.New("boom")
	var produced atomic.Int64
	err := StreamOrdered(context.Background(), 1000, 4,
		func(ctx context.Context, worker, idx int) (int, error) {
			produced.Add(1)
			return idx, nil
		},
		func(idx int, v int) error {
			if idx == 5 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if p := produced.Load(); p >= 1000 {
		t.Fatalf("consumer error did not stop producers: %d items produced", p)
	}
}

func TestStreamOrderedSerialStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	var ran int
	err := StreamOrdered(context.Background(), 10, 1,
		func(ctx context.Context, worker, idx int) (int, error) {
			ran++
			if idx == 3 {
				return 0, boom
			}
			return idx, nil
		},
		func(idx int, v int) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran != 4 {
		t.Fatalf("ran %d items after error at index 3", ran)
	}
}

func TestStreamOrderedHonorsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := StreamOrdered(ctx, 100, 4,
		func(ctx context.Context, worker, idx int) (int, error) { return idx, nil },
		func(idx int, v int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestStreamOrderedCancelMidStream cancels while producers are blocked on
// the window and the consumer is mid-drain; StreamOrdered must return
// promptly with the cancellation error and leave no workers running.
func TestStreamOrderedCancelMidStream(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	started := make(chan struct{}, 1)
	go func() {
		done <- StreamOrdered(ctx, 1000, 4,
			func(ctx context.Context, worker, idx int) (int, error) {
				select {
				case started <- struct{}{}:
				default:
				}
				return idx, nil
			},
			func(idx int, v int) error {
				time.Sleep(time.Millisecond)
				return nil
			})
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("StreamOrdered did not return after cancel")
	}
}
