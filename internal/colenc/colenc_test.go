package colenc

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"eon/internal/types"
)

func vecEqual(t *testing.T, a, b *types.Vector) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("len %d != %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		da, db := a.Datum(i), b.Datum(i)
		if da.Null != db.Null || (!da.Null && da.Compare(db) != 0) {
			t.Fatalf("position %d: %v != %v", i, da, db)
		}
	}
}

func roundtrip(t *testing.T, v *types.Vector, enc Encoding) {
	t.Helper()
	data := Encode(v, enc)
	got, err := Decode(data, v.Typ)
	if err != nil {
		t.Fatalf("%v decode: %v", enc, err)
	}
	vecEqual(t, v, got)
}

func TestRoundtripAllEncodingsInts(t *testing.T) {
	v := types.NewVector(types.Int64, 16)
	for _, x := range []int64{5, 5, 5, -3, 100, 100, 0, 9999999, -1 << 40} {
		v.Append(types.NewInt(x))
	}
	v.Append(types.NullDatum(types.Int64))
	v.Append(types.NewInt(7))
	for _, enc := range []Encoding{Plain, RLE, Delta, FOR} {
		roundtrip(t, v, enc)
	}
}

func TestRoundtripStrings(t *testing.T) {
	v := types.NewVector(types.Varchar, 8)
	for _, s := range []string{"apple", "apple", "banana", "", "cherry", "apple"} {
		v.Append(types.NewString(s))
	}
	v.Append(types.NullDatum(types.Varchar))
	for _, enc := range []Encoding{Plain, RLE, Dict} {
		roundtrip(t, v, enc)
	}
}

func TestRoundtripFloats(t *testing.T) {
	v := types.NewVector(types.Float64, 4)
	for _, f := range []float64{1.5, -2.25, 0, 1e300} {
		v.Append(types.NewFloat(f))
	}
	v.Append(types.NullDatum(types.Float64))
	for _, enc := range []Encoding{Plain, RLE} {
		roundtrip(t, v, enc)
	}
}

func TestRoundtripBools(t *testing.T) {
	v := types.NewVector(types.Bool, 6)
	for _, b := range []bool{true, true, false, true, false, false} {
		v.Append(types.NewBool(b))
	}
	for _, enc := range []Encoding{Plain, RLE} {
		roundtrip(t, v, enc)
	}
}

func TestRoundtripEmpty(t *testing.T) {
	for _, typ := range []types.Type{types.Int64, types.Float64, types.Varchar, types.Bool} {
		v := types.NewVector(typ, 0)
		for _, enc := range []Encoding{Plain, RLE, Delta, FOR, Dict} {
			roundtrip(t, v, enc)
		}
	}
}

func TestDateTimestampLogicalTypesPreserved(t *testing.T) {
	v := types.NewVector(types.Date, 3)
	v.Append(types.NewDate(17000))
	v.Append(types.NewDate(17001))
	data := Encode(v, Delta)
	got, err := Decode(data, types.Date)
	if err != nil {
		t.Fatal(err)
	}
	if got.Typ != types.Date || got.Ints[1] != 17001 {
		t.Errorf("decoded %v %v", got.Typ, got.Ints)
	}
}

// Property: random int vectors roundtrip through every int encoding.
func TestQuickIntRoundtrip(t *testing.T) {
	f := func(xs []int64, nullMask []bool) bool {
		v := types.NewVector(types.Int64, len(xs))
		for i, x := range xs {
			if i < len(nullMask) && nullMask[i] {
				v.Append(types.NullDatum(types.Int64))
			} else {
				v.Append(types.NewInt(x))
			}
		}
		for _, enc := range []Encoding{Plain, RLE, Delta, FOR} {
			data := Encode(v, enc)
			got, err := Decode(data, types.Int64)
			if err != nil || got.Len() != v.Len() {
				return false
			}
			for i := 0; i < v.Len(); i++ {
				if v.IsNull(i) != got.IsNull(i) {
					return false
				}
				if !v.IsNull(i) && v.Ints[i] != got.Ints[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: random string vectors roundtrip through Dict and RLE.
func TestQuickStringRoundtrip(t *testing.T) {
	f := func(xs []string) bool {
		v := types.NewVector(types.Varchar, len(xs))
		for _, x := range xs {
			v.Append(types.NewString(x))
		}
		for _, enc := range []Encoding{Plain, RLE, Dict} {
			data := Encode(v, enc)
			got, err := Decode(data, types.Varchar)
			if err != nil || got.Len() != v.Len() {
				return false
			}
			for i := range xs {
				if got.Strs[i] != xs[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWideIntRangeFallsBackFromFOR(t *testing.T) {
	v := types.NewVector(types.Int64, 2)
	v.Append(types.NewInt(-1 << 62))
	v.Append(types.NewInt(1 << 62))
	roundtrip(t, v, FOR) // must still roundtrip via the plain fallback
}

func TestSortedDataCompressesBetter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 4096
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = rng.Int63n(1000)
	}
	unsortedVec := types.NewVector(types.Int64, n)
	for _, x := range xs {
		unsortedVec.Append(types.NewInt(x))
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	sortedVec := types.NewVector(types.Int64, n)
	for _, x := range xs {
		sortedVec.Append(types.NewInt(x))
	}
	sortedSize := len(Encode(sortedVec, Choose(sortedVec, true)))
	plainSize := len(Encode(unsortedVec, Plain))
	if sortedSize >= plainSize {
		t.Errorf("sorted encoding (%d bytes) should beat plain on unsorted (%d bytes)", sortedSize, plainSize)
	}
}

func TestChoose(t *testing.T) {
	constant := types.NewVector(types.Int64, 100)
	for i := 0; i < 100; i++ {
		constant.Append(types.NewInt(7))
	}
	if Choose(constant, true) != RLE {
		t.Errorf("constant column should choose RLE, got %v", Choose(constant, true))
	}
	lowCard := types.NewVector(types.Varchar, 100)
	for i := 0; i < 100; i++ {
		lowCard.Append(types.NewString([]string{"a", "b", "c"}[i%3]))
	}
	if Choose(lowCard, false) != Dict {
		t.Errorf("low-cardinality strings should choose Dict, got %v", Choose(lowCard, false))
	}
}

func TestDecodeCorrupt(t *testing.T) {
	v := types.NewVector(types.Int64, 2)
	v.Append(types.NewInt(1))
	v.Append(types.NewInt(2))
	data := Encode(v, Plain)
	if _, err := Decode(data[:len(data)-1], types.Int64); err == nil {
		t.Error("truncated block should fail")
	}
	if _, err := Decode([]byte{99, 1, 0}, types.Int64); err == nil {
		t.Error("bad encoding tag should fail")
	}
	if _, err := Decode(nil, types.Int64); err == nil {
		t.Error("empty input should fail")
	}
}

func TestEncodingString(t *testing.T) {
	if Plain.String() != "PLAIN" || FOR.String() != "FOR" {
		t.Error("encoding names")
	}
}
