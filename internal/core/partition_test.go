package core

import (
	"testing"

	"eon/internal/catalog"
	"eon/internal/types"
)

// loadPartitioned creates a partitioned table with 3 buckets x 60 rows.
func loadPartitioned(t *testing.T, db *DB, name string) {
	t.Helper()
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE `+name+` (id INTEGER, bucket INTEGER) PARTITION BY bucket`)
	mustExec(t, s, `CREATE PROJECTION `+name+`_p AS SELECT * FROM `+name+` ORDER BY id SEGMENTED BY HASH(id) ALL NODES`)
	schema := types.Schema{{Name: "id", Type: types.Int64}, {Name: "bucket", Type: types.Int64}}
	b := types.NewBatch(schema, 180)
	for i := 0; i < 180; i++ {
		b.AppendRow(types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 3))})
	}
	if err := db.LoadRows(name, b); err != nil {
		t.Fatal(err)
	}
}

func TestCopyTableSharesFiles(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	loadPartitioned(t, db, "orig")

	if err := db.CopyTable("orig", "clone"); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	a := mustQuery(t, s, `SELECT COUNT(*) FROM orig`).Row(t, 0)[0].I
	b := mustQuery(t, s, `SELECT COUNT(*) FROM clone`).Row(t, 0)[0].I
	if a != 180 || b != 180 {
		t.Fatalf("counts orig=%d clone=%d", a, b)
	}
	// The copy shares the original's files: no new data objects.
	init, _ := db.anyUpNode()
	refs := fileReferenceCount(init.catalog.Snapshot())
	shared := 0
	for _, n := range refs {
		if n >= 2 {
			shared++
		}
	}
	if shared == 0 {
		t.Error("copy should share storage files by reference")
	}
	// The tables diverge through deletes without affecting each other.
	mustExec(t, s, `DELETE FROM clone WHERE bucket = 0`)
	a = mustQuery(t, s, `SELECT COUNT(*) FROM orig`).Row(t, 0)[0].I
	b = mustQuery(t, s, `SELECT COUNT(*) FROM clone`).Row(t, 0)[0].I
	if a != 180 || b != 120 {
		t.Errorf("after delete: orig=%d clone=%d", a, b)
	}
}

func TestDropTableKeepsSharedFiles(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	loadPartitioned(t, db, "orig")
	if err := db.CopyTable("orig", "clone"); err != nil {
		t.Fatal(err)
	}
	// Dropping the original must not delete files the clone references.
	s := db.NewSession()
	mustExec(t, s, `DROP TABLE orig`)
	if err := db.SyncMetadata(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.RunGC(); err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, s, `SELECT COUNT(*) FROM clone`)
	if res.Row(t, 0)[0].I != 180 {
		t.Errorf("clone lost rows after original dropped: %v", res.Rows())
	}
	// Dropping the clone finally frees the files.
	mustExec(t, s, `DROP TABLE clone`)
	if err := db.SyncMetadata(); err != nil {
		t.Fatal(err)
	}
	n, err := db.RunGC()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("dropping the last reference should free files")
	}
	infos, _ := db.SharedStore().List(db.Context(), "data/")
	if len(infos) != 0 {
		t.Errorf("%d orphan files remain", len(infos))
	}
}

func TestDropPartition(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	loadPartitioned(t, db, "ev")
	dropped, err := db.DropPartition("ev", "1")
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("no containers dropped")
	}
	s := db.NewSession()
	if n := mustQuery(t, s, `SELECT COUNT(*) FROM ev`).Row(t, 0)[0].I; n != 120 {
		t.Errorf("count = %d, want 120", n)
	}
	if n := mustQuery(t, s, `SELECT COUNT(*) FROM ev WHERE bucket = 1`).Row(t, 0)[0].I; n != 0 {
		t.Errorf("partition 1 still visible: %d rows", n)
	}
	// Idempotent.
	if d2, _ := db.DropPartition("ev", "1"); d2 != 0 {
		t.Errorf("second drop removed %d", d2)
	}
}

func TestMovePartition(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	loadPartitioned(t, db, "hot")
	s := db.NewSession()
	// Structurally identical archive table.
	mustExec(t, s, `CREATE TABLE cold (id INTEGER, bucket INTEGER) PARTITION BY bucket`)
	mustExec(t, s, `CREATE PROJECTION cold_p AS SELECT * FROM cold ORDER BY id SEGMENTED BY HASH(id) ALL NODES`)

	moved, err := db.MovePartition("hot", "cold", "2")
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("nothing moved")
	}
	if n := mustQuery(t, s, `SELECT COUNT(*) FROM hot`).Row(t, 0)[0].I; n != 120 {
		t.Errorf("hot = %d", n)
	}
	if n := mustQuery(t, s, `SELECT COUNT(*) FROM cold`).Row(t, 0)[0].I; n != 60 {
		t.Errorf("cold = %d", n)
	}
	for _, r := range mustQuery(t, s, `SELECT DISTINCT bucket FROM cold`).Rows() {
		if r[0].I != 2 {
			t.Errorf("cold has bucket %d", r[0].I)
		}
	}
}

func TestMovePartitionRequiresStructuralMatch(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	loadPartitioned(t, db, "hot")
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE other (id INTEGER, bucket INTEGER)`)
	mustExec(t, s, `CREATE PROJECTION other_p AS SELECT * FROM other ORDER BY bucket SEGMENTED BY HASH(bucket) ALL NODES`)
	if _, err := db.MovePartition("hot", "other", "0"); err == nil {
		t.Error("structurally different projections must reject the move")
	}
}

func TestMergeoutRespectsPartitions(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE ev (id INTEGER, bucket INTEGER) PARTITION BY bucket`)
	schema := types.Schema{{Name: "id", Type: types.Int64}, {Name: "bucket", Type: types.Int64}}
	// Many small loads spanning 2 partitions.
	for l := 0; l < 10; l++ {
		b := types.NewBatch(schema, 20)
		for i := 0; i < 20; i++ {
			b.AppendRow(types.Row{types.NewInt(int64(l*20 + i)), types.NewInt(int64(i % 2))})
		}
		if err := db.LoadRows("ev", b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.RunMergeout(); err != nil {
		t.Fatal(err)
	}
	// Every surviving container carries exactly one partition key.
	init, _ := db.anyUpNode()
	snap := init.catalog.Snapshot()
	tbl, _ := snap.TableByName("ev")
	for _, p := range snap.ProjectionsOf(tbl.OID) {
		for _, sc := range snap.ContainersOf(p.OID, catalog.GlobalShard) {
			if sc.PartitionKey != "0" && sc.PartitionKey != "1" {
				t.Errorf("container %d has partition key %q", sc.OID, sc.PartitionKey)
			}
		}
	}
	// Data intact.
	if n := mustQuery(t, s, `SELECT COUNT(*) FROM ev`).Row(t, 0)[0].I; n != 200 {
		t.Errorf("count = %d", n)
	}
}
