package objstore

import (
	"context"
	"errors"
	"testing"
)

func newDisk(t *testing.T) *Disk {
	t.Helper()
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiskPutGet(t *testing.T) {
	ctx := context.Background()
	d := newDisk(t)
	if err := d.Put(ctx, "data/ab/key_1", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get(ctx, "data/ab/key_1")
	if err != nil || string(got) != "hello" {
		t.Fatalf("get = %q, %v", got, err)
	}
}

func TestDiskImmutable(t *testing.T) {
	ctx := context.Background()
	d := newDisk(t)
	d.Put(ctx, "k", []byte("1"))
	if err := d.Put(ctx, "k", []byte("2")); !errors.Is(err, ErrExists) {
		t.Errorf("overwrite = %v", err)
	}
}

func TestDiskNotFound(t *testing.T) {
	d := newDisk(t)
	if _, err := d.Get(context.Background(), "missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestDiskListPrefix(t *testing.T) {
	ctx := context.Background()
	d := newDisk(t)
	d.Put(ctx, "data/1", []byte("x"))
	d.Put(ctx, "data/2", []byte("xy"))
	d.Put(ctx, "meta/1", []byte("z"))
	infos, err := d.List(ctx, "data/")
	if err != nil || len(infos) != 2 {
		t.Fatalf("list = %v, %v", infos, err)
	}
	if infos[0].Key != "data/1" || infos[1].Size != 2 {
		t.Errorf("contents = %v", infos)
	}
}

func TestDiskDeleteIdempotent(t *testing.T) {
	ctx := context.Background()
	d := newDisk(t)
	d.Put(ctx, "k", []byte("v"))
	if err := d.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(ctx, "k"); err != nil {
		t.Errorf("second delete = %v", err)
	}
}

func TestDiskGetRange(t *testing.T) {
	ctx := context.Background()
	d := newDisk(t)
	d.Put(ctx, "k", []byte("0123456789"))
	got, err := d.GetRange(ctx, "k", 2, 3)
	if err != nil || string(got) != "234" {
		t.Fatalf("range = %q, %v", got, err)
	}
}

// A whole cluster lifecycle works against the disk backend.
func TestDiskBackedStoreSurvivesReopen(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	d1, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	d1.Put(ctx, "cluster_info.json", []byte("{}"))
	d1.Put(ctx, "data/ab/file", []byte("payload"))

	d2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d2.Get(ctx, "data/ab/file")
	if err != nil || string(got) != "payload" {
		t.Fatalf("reopened get = %q, %v", got, err)
	}
	infos, _ := d2.List(ctx, "")
	if len(infos) != 2 {
		t.Errorf("reopened list = %v", infos)
	}
}
