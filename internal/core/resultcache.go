package core

import (
	"container/list"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"eon/internal/catalog"
	"eon/internal/obs"
	"eon/internal/planner"
	"eon/internal/types"
)

// resultCache caches complete result sets of parameterized hot queries.
// Entries are never expired by wall time: the key embeds a fingerprint
// of the shard-level catalog object versions the plan actually reads
// (catalog.ModVersion of every table, projection, storage container and
// delete vector any participant could touch), so any commit that changes
// the data a query would see — a load, delete, mergeout or DDL — changes
// the fingerprint computed at lookup time and the stale entry simply
// stops matching, while unrelated catalog activity leaves hot entries
// valid. Capacity is bounded in bytes (Config.ResultCacheBytes) with LRU
// eviction; the cache is off by default.
//
// Cached batches are shared across executions and must be treated as
// read-only by callers (Result consumers only ever read).
type resultCache struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	entries  map[resultKey]*list.Element
	lru      *list.List // of *resultEntry; front = most recent

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	inserts   *obs.Counter
}

// resultKey identifies one cached result: the statement, its bound
// argument values, the knobs that shape execution output order, and the
// data-version fingerprint. RowEngine/MaterializedExec cannot change
// result bytes (the engines are differentially tested as identical) but
// are part of the key anyway so engine-differential tests exercise both
// engines instead of one engine plus its cached output.
type resultKey struct {
	norm     string
	args     string // canonical encoding of bound parameter values
	noSeg    bool
	rowEng   bool
	matExec  bool
	depsHash uint64
}

type resultEntry struct {
	key   resultKey
	res   *Result
	bytes int64
	rows  int
	hits  atomic.Int64
}

func newResultCache(maxBytes int64) *resultCache {
	if maxBytes <= 0 {
		return nil // opt-in: off unless Config.ResultCacheBytes is set
	}
	return &resultCache{
		maxBytes: maxBytes,
		entries:  map[resultKey]*list.Element{},
		lru:      list.New(),
		hits:     &obs.Counter{}, misses: &obs.Counter{},
		evictions: &obs.Counter{}, inserts: &obs.Counter{},
	}
}

// register wires the cache's counters and gauges into the registry.
func (c *resultCache) register(reg *obs.Registry) {
	if c == nil {
		return
	}
	reg.RegisterCounter("resultcache.hits", c.hits)
	reg.RegisterCounter("resultcache.misses", c.misses)
	reg.RegisterCounter("resultcache.evictions", c.evictions)
	reg.RegisterCounter("resultcache.inserts", c.inserts)
	reg.GaugeFunc("resultcache.bytes", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.curBytes
	})
	reg.GaugeFunc("resultcache.entries", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return int64(c.lru.Len())
	})
}

func (c *resultCache) lookup(key resultKey) (*Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*resultEntry)
	c.hits.Inc()
	e.hits.Add(1)
	return e.res, true
}

func (c *resultCache) store(key resultKey, res *Result) {
	if c == nil {
		return
	}
	size := batchBytes(res.Batch) + int64(len(key.norm)+len(key.args)) + 128
	if size > c.maxBytes {
		return // one oversized result must not flush the whole cache
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Another execution of the same query raced us here; keep the
		// existing entry (byte-identical by construction).
		c.lru.MoveToFront(el)
		return
	}
	e := &resultEntry{key: key, res: res, bytes: size, rows: res.NumRows()}
	c.entries[key] = c.lru.PushFront(e)
	c.curBytes += size
	c.inserts.Inc()
	for c.curBytes > c.maxBytes && c.lru.Len() > 1 {
		old := c.lru.Back()
		c.lru.Remove(old)
		oe := old.Value.(*resultEntry)
		delete(c.entries, oe.key)
		c.curBytes -= oe.bytes
		c.evictions.Inc()
	}
}

// resultCacheRow is one entry's stats for v_monitor.result_cache.
type resultCacheRow struct {
	Statement string
	Args      string
	Rows      int
	Bytes     int64
	Hits      int64
	DepsHash  uint64
}

// snapshotRows copies the cache contents, most recently used first.
func (c *resultCache) snapshotRows() []resultCacheRow {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]resultCacheRow, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*resultEntry)
		out = append(out, resultCacheRow{
			Statement: e.key.norm, Args: e.key.args,
			Rows: e.rows, Bytes: e.bytes, Hits: e.hits.Load(),
			DepsHash: e.key.depsHash,
		})
	}
	return out
}

// argsFingerprint canonically encodes bound parameter values for the
// result key. Type tags keep 1, 1.0 and '1' distinct.
func argsFingerprint(args []types.Datum) string {
	if len(args) == 0 {
		return ""
	}
	var b []byte
	for _, d := range args {
		b = append(b, byte('0'+int(d.K)%10), ':')
		switch {
		case d.Null:
			b = append(b, 'n')
		case d.K.Physical() == types.Float64:
			b = strconv.AppendFloat(b, d.F, 'g', -1, 64)
		case d.K.Physical() == types.Varchar:
			b = strconv.AppendQuote(b, d.S)
		case d.K.Physical() == types.Bool:
			if d.B {
				b = append(b, 't')
			} else {
				b = append(b, 'f')
			}
		default:
			b = strconv.AppendInt(b, d.I, 10)
		}
		b = append(b, ';')
	}
	return string(b)
}

// depsFingerprint hashes the catalog object versions the plan's scans
// depend on, unioned across every participating node's snapshot. The
// union matters: in Eon mode each node's catalog is filtered to its
// subscribed shards, so no single snapshot sees every storage container
// the query will read — but the participants collectively cover all
// shards, and the union is therefore the projection's full container
// set regardless of which covering assignment was chosen. ok=false marks
// the plan uncacheable: a virtual (v_monitor) scan reads live monitoring
// state with no version discipline.
func (env *queryEnv) depsFingerprint(plan *planner.Plan) (uint64, bool) {
	scans := planner.Scans(plan)
	deps := map[catalog.OID]uint64{}
	for _, s := range scans {
		if s.Virtual || s.Table == nil || s.Proj == nil {
			return 0, false
		}
		for _, name := range env.nodes {
			snap := env.snapshots[name]
			deps[s.Table.OID] = snap.ModVersion(s.Table.OID)
			deps[s.Proj.OID] = snap.ModVersion(s.Proj.OID)
			for _, sc := range snap.ContainersOf(s.Proj.OID, catalog.GlobalShard) {
				deps[sc.OID] = snap.ModVersion(sc.OID)
				for _, dv := range snap.DeleteVectorsOf(sc.OID) {
					deps[dv.OID] = snap.ModVersion(dv.OID)
				}
			}
		}
	}
	oids := make([]catalog.OID, 0, len(deps))
	for oid := range deps {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	h := fnv.New64a()
	var buf [16]byte
	for _, oid := range oids {
		putU64(buf[:8], uint64(oid))
		putU64(buf[8:], deps[oid])
		h.Write(buf[:])
	}
	return h.Sum64(), true
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
