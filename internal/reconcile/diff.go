package reconcile

import (
	"fmt"
	"sort"

	"eon/internal/catalog"
	"eon/internal/shard"
)

// nodeInfo is one node as observed this round.
type nodeInfo struct {
	name       string
	subcluster string
	spare      bool
	up         bool
}

// observed is the cluster state a diff runs against.
type observed struct {
	snap    *catalog.Snapshot
	bySC    map[string][]nodeInfo // serving members keyed by subcluster
	spares  []nodeInfo            // spare-pool nodes, up and down
	taken   map[string]bool       // every name in use (runtime or catalog)
	hasData bool                  // any storage container committed
}

// observe reads the runtime node table and the catalog of the first up
// node. Membership attributes (subcluster, spare flag) come from the
// runtime node, which mirrors the committed catalog; the snapshot is
// kept for planning checks. Returns nil when no node is up.
func (r *Reconciler) observe() *observed {
	o := &observed{bySC: map[string][]nodeInfo{}, taken: map[string]bool{}}
	for _, n := range r.db.Nodes() {
		ni := nodeInfo{name: n.Name(), subcluster: n.Subcluster(), spare: n.Spare(), up: n.Up()}
		o.taken[ni.name] = true
		if ni.spare {
			o.spares = append(o.spares, ni)
		} else {
			o.bySC[ni.subcluster] = append(o.bySC[ni.subcluster], ni)
		}
		if o.snap == nil && ni.up {
			o.snap = n.Catalog().Snapshot()
		}
	}
	if o.snap == nil {
		return nil
	}
	for _, cn := range o.snap.Nodes() {
		o.taken[cn.Name] = true
	}
	sort.Slice(o.spares, func(i, j int) bool { return o.spares[i].name < o.spares[j].name })
	o.snap.ForEach(catalog.KindStorageContainer, func(catalog.Object) bool {
		o.hasData = true
		return false
	})
	return o
}

// diff derives the action plan from observed state, in priority order.
// It is a pure function of (spec, observation): re-running it after any
// prefix of the plan executed — or after a crash mid-action — yields
// the remaining work, which is what makes rounds idempotent.
func (r *Reconciler) diff() []Action {
	o := r.observe()
	if o == nil {
		return nil
	}
	var out []Action

	// Warm spares available for promotion, cheapest name first.
	var pool []string
	for _, sp := range o.spares {
		if sp.up {
			pool = append(pool, sp.name)
		}
	}

	declared := map[string]bool{}
	for _, sc := range r.spec.Subclusters {
		declared[sc.Name] = true
		desired := r.desiredSize(sc)
		var alive, dead []nodeInfo
		for _, m := range o.bySC[sc.Name] {
			if m.up {
				alive = append(alive, m)
			} else {
				dead = append(dead, m)
			}
		}
		sort.Slice(alive, func(i, j int) bool { return alive[i].name < alive[j].name })
		sort.Slice(dead, func(i, j int) bool { return dead[i].name < dead[j].name })

		for _, d := range dead {
			if len(alive) >= desired {
				// A replacement already serves (e.g. the spare promoted last
				// round); the dead husk just needs removing.
				out = append(out, Action{Kind: ActRemoveNode, Node: d.name, Subcluster: sc.Name,
					Reason: "dead node already replaced"})
				continue
			}
			if len(pool) > 0 {
				sp := pool[0]
				pool = pool[1:]
				out = append(out, Action{Kind: ActPromoteSpare, Node: sp, Subcluster: sc.Name,
					Reason: fmt.Sprintf("member %s is down", d.name)})
				alive = append(alive, nodeInfo{name: sp, up: true})
				continue
			}
			out = append(out, Action{Kind: ActRevive, Node: d.name, Subcluster: sc.Name,
				Reason: "member down, no warm spare available"})
			alive = append(alive, d)
		}
		for len(alive) < desired {
			name := freshName(prefixFor(sc.Name), o.taken)
			out = append(out, Action{Kind: ActAddNode, Node: name, Subcluster: sc.Name,
				Reason: fmt.Sprintf("below desired size %d", desired)})
			alive = append(alive, nodeInfo{name: name, up: true})
		}
		// Shrink from the highest name down, so generated members go first.
		for i := len(alive); i > desired; i-- {
			out = append(out, Action{Kind: ActRemoveNode, Node: alive[i-1].name, Subcluster: sc.Name,
				Reason: fmt.Sprintf("above desired size %d", desired)})
		}
	}

	// Members of subclusters the spec no longer declares drain out.
	var strays []string
	for scName, members := range o.bySC {
		if declared[scName] {
			continue
		}
		for _, m := range members {
			strays = append(strays, m.name)
		}
	}
	sort.Strings(strays)
	for _, name := range strays {
		out = append(out, Action{Kind: ActRemoveNode, Node: name,
			Reason: "subcluster not in spec"})
	}

	// Spare pool: revive dead spares while short, add fresh ones for the
	// rest of the gap, drain any surplus.
	need := r.spec.Spares - len(pool)
	for _, sp := range o.spares {
		if sp.up {
			continue
		}
		if need > 0 {
			out = append(out, Action{Kind: ActRevive, Node: sp.name,
				Reason: "spare down"})
			need--
		} else {
			out = append(out, Action{Kind: ActRemoveNode, Node: sp.name,
				Reason: "surplus spare"})
		}
	}
	for ; need > 0; need-- {
		name := freshName("spare", o.taken)
		out = append(out, Action{Kind: ActAddSpare, Node: name,
			Reason: "spare pool below desired size"})
	}
	// need < 0 means surplus up spares; drain the highest-named ones.
	kept := pool
	if need < 0 {
		kept = pool[:len(pool)+need]
		for _, sp := range pool[len(pool)+need:] {
			out = append(out, Action{Kind: ActRemoveNode, Node: sp,
				Reason: "surplus spare"})
		}
	}

	// A provisioned-but-cold spare (e.g. freshly revived) gets re-warmed
	// so promotion stays a subscription flip, not a depot rebuild. Only
	// planned when some member depot is warm: warming pulls from peer
	// MRU lists, so against all-cold peers it would be a no-op forever.
	if o.hasData && r.anyMemberWarm() {
		for _, sp := range kept {
			if n, ok := r.db.Node(sp); ok && n.Cache().Stats().BytesCached == 0 {
				out = append(out, Action{Kind: ActWarmSpare, Node: sp,
					Reason: "spare depot cold"})
			}
		}
	}

	// Rebalance is the final convergence step: only once membership
	// matches the spec do we ask the planner whether shard coverage does.
	if len(out) == 0 {
		var ignore []string
		for _, sp := range o.spares {
			ignore = append(ignore, sp.name)
		}
		acts := shard.PlanRebalance(o.snap, shard.PlanOptions{
			ReplicationFactor: r.effectiveRF(),
			IgnoreNodes:       ignore,
		})
		if len(acts) > 0 {
			out = append(out, Action{Kind: ActRebalance,
				Reason: fmt.Sprintf("%d subscription changes needed", len(acts))})
		}
	}

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// anyMemberWarm reports whether any up serving member has cached files.
func (r *Reconciler) anyMemberWarm() bool {
	for _, n := range r.db.Nodes() {
		if n.Up() && !n.Spare() && n.Cache().Stats().BytesCached > 0 {
			return true
		}
	}
	return false
}

// desiredSize is the spec size, overridden by autoscale state when the
// policy covers this subcluster.
func (r *Reconciler) desiredSize(sc SubclusterSpec) int {
	as := r.spec.Autoscale
	if as == nil || as.Subcluster != sc.Name {
		return sc.Size
	}
	size, ok := r.asSize[sc.Name]
	if !ok {
		size = sc.Size
	}
	return clampSize(size, as)
}

func clampSize(size int, as *AutoscalePolicy) int {
	min, max := as.Min, as.Max
	if min <= 0 {
		min = 1
	}
	if max < min {
		max = min
	}
	if size < min {
		return min
	}
	if size > max {
		return max
	}
	return size
}

// effectiveRF is the replication factor the spec asks for, defaulting
// to the database's configured one.
func (r *Reconciler) effectiveRF() int {
	if r.spec.ReplicationFactor > 0 {
		return r.spec.ReplicationFactor
	}
	return r.db.ReplicationFactor()
}

func prefixFor(subcluster string) string {
	if subcluster == "" {
		return "node"
	}
	return subcluster
}

// freshName picks the lowest unused "prefix-N" and reserves it in taken,
// so one diff never hands the same name to two actions.
func freshName(prefix string, taken map[string]bool) string {
	for i := 1; ; i++ {
		name := fmt.Sprintf("%s-%d", prefix, i)
		if !taken[name] {
			taken[name] = true
			return name
		}
	}
}
