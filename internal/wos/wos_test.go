package wos

import (
	"testing"

	"eon/internal/types"
)

var schema = types.Schema{{Name: "id", Type: types.Int64}}

func batchOf(xs ...int64) *types.Batch {
	rows := make([]types.Row, len(xs))
	for i, x := range xs {
		rows[i] = types.Row{types.NewInt(x)}
	}
	return types.BatchFromRows(schema, rows)
}

func TestInsertAndRows(t *testing.T) {
	s := New()
	s.Insert(1, schema, batchOf(1, 2))
	s.Insert(1, schema, batchOf(3))
	got := s.Rows(1)
	if got == nil || got.NumRows() != 3 {
		t.Fatalf("rows = %v", got)
	}
	if s.RowCount(1) != 3 || s.TotalRows() != 3 {
		t.Error("counts wrong")
	}
}

func TestRowsReturnsCopy(t *testing.T) {
	s := New()
	s.Insert(1, schema, batchOf(1))
	got := s.Rows(1)
	got.AppendRow(types.Row{types.NewInt(99)})
	if s.RowCount(1) != 1 {
		t.Error("Rows must return an independent copy")
	}
}

func TestDrain(t *testing.T) {
	s := New()
	s.Insert(1, schema, batchOf(1, 2))
	got := s.Drain(1)
	if got == nil || got.NumRows() != 2 {
		t.Fatalf("drain = %v", got)
	}
	if s.RowCount(1) != 0 || s.Rows(1) != nil {
		t.Error("drain must empty the buffer")
	}
	if s.Drain(1) != nil {
		t.Error("second drain is nil")
	}
}

func TestMultipleProjections(t *testing.T) {
	s := New()
	s.Insert(1, schema, batchOf(1))
	s.Insert(2, schema, batchOf(2, 3))
	projs := s.Projections()
	if len(projs) != 2 {
		t.Errorf("projections = %v", projs)
	}
	if s.TotalRows() != 3 {
		t.Error("total")
	}
}

func TestEmptyInsertIgnored(t *testing.T) {
	s := New()
	s.Insert(1, schema, nil)
	s.Insert(1, schema, types.NewBatch(schema, 0))
	if s.RowCount(1) != 0 || len(s.Projections()) != 0 {
		t.Error("empty inserts should be ignored")
	}
}
