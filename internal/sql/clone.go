package sql

import "eon/internal/expr"

// CloneSelect deep-copies a SELECT statement's expression trees. The
// planner resolves and binds column references in place, so an AST that
// is planned more than once — a cached statement replanned after a DDL
// bump, or a prepared statement shared by concurrent executions — must
// be cloned per planning pass; handing the same AST to two concurrent
// PlanSelect calls would race on the embedded ColumnRef state.
func CloneSelect(s *Select) *Select {
	if s == nil {
		return nil
	}
	c := *s
	c.Items = make([]SelectItem, len(s.Items))
	for i, it := range s.Items {
		c.Items[i] = it
		if it.Expr != nil {
			c.Items[i].Expr = expr.Clone(it.Expr)
		}
		if it.Agg != nil {
			agg := *it.Agg
			if agg.Arg != nil {
				agg.Arg = expr.Clone(agg.Arg)
			}
			c.Items[i].Agg = &agg
		}
	}
	if s.Joins != nil {
		c.Joins = make([]Join, len(s.Joins))
		for i, j := range s.Joins {
			c.Joins[i] = j
			if j.On != nil {
				c.Joins[i].On = expr.Clone(j.On)
			}
		}
	}
	if s.Where != nil {
		c.Where = expr.Clone(s.Where)
	}
	if s.GroupBy != nil {
		c.GroupBy = make([]expr.Expr, len(s.GroupBy))
		for i, g := range s.GroupBy {
			c.GroupBy[i] = expr.Clone(g)
		}
	}
	if s.Having != nil {
		c.Having = expr.Clone(s.Having)
	}
	if s.OrderBy != nil {
		c.OrderBy = make([]OrderItem, len(s.OrderBy))
		for i, o := range s.OrderBy {
			c.OrderBy[i] = o
			if o.Expr != nil {
				c.OrderBy[i].Expr = expr.Clone(o.Expr)
			}
		}
	}
	return &c
}
