// Prepared-plan support: a planned SELECT containing bind parameters
// ("?" placeholders) is cached once and specialized per execution by
// BindParams, which substitutes literal argument values into copies of
// only the parameter-bearing nodes. Nodes without parameters are shared
// between the cached plan and every specialization, so executors must
// treat plan nodes as read-only (they do — execution state lives in
// exec operators, not plan nodes).
package planner

import (
	"fmt"

	"eon/internal/catalog"
	"eon/internal/exec"
	"eon/internal/expr"
	"eon/internal/types"
)

// NumParams returns the highest bind-parameter ordinal referenced
// anywhere in the plan (0 for a parameter-free plan).
func NumParams(p *Plan) int {
	max := 0
	visit := func(e expr.Expr) {
		if e == nil {
			return
		}
		if n := expr.MaxParam(e); n > max {
			max = n
		}
	}
	walkNodes(p.Root, func(n Node) {
		forEachExpr(n, visit)
	})
	return max
}

// BindParams specializes a cached plan for one execution: every Param
// node is replaced by a Literal holding the corresponding argument, and
// the affected expressions are re-bound so operator result types (which
// could not be computed while the parameter value was unknown) are
// resolved. Only nodes on the path to a parameter are copied; the rest
// of the tree is shared with the cached plan and MUST NOT be mutated.
// A parameter-free plan is returned unchanged.
func BindParams(p *Plan, args []types.Datum) (*Plan, error) {
	need := NumParams(p)
	if need == 0 {
		if len(args) > 0 {
			return nil, fmt.Errorf("planner: statement takes no parameters, got %d", len(args))
		}
		return p, nil
	}
	if len(args) < need {
		return nil, fmt.Errorf("planner: statement takes %d parameters, got %d", need, len(args))
	}
	root, _, err := bindNodeParams(p.Root, args)
	if err != nil {
		return nil, err
	}
	return &Plan{Root: root, OutputNames: p.OutputNames}, nil
}

// bindExpr substitutes parameters into one expression and re-binds the
// substituted copy against schema. Expressions without parameters are
// returned as-is (still bound, shared with the cached plan) and are
// never re-bound: Bind mutates column references in place, and the
// shared original may be executing concurrently.
func bindExpr(e expr.Expr, args []types.Datum, schema types.Schema) (expr.Expr, bool, error) {
	if e == nil || !expr.HasParams(e) {
		return e, false, nil
	}
	out, err := expr.SubstituteParams(e, args)
	if err != nil {
		return nil, false, err
	}
	if err := expr.Bind(out, schema); err != nil {
		return nil, false, err
	}
	return out, true, nil
}

// bindNodeParams returns a parameter-free copy of n (sharing untouched
// subtrees) and whether anything changed.
func bindNodeParams(n Node, args []types.Datum) (Node, bool, error) {
	switch t := n.(type) {
	case *Scan:
		pred, changed, err := bindExpr(t.Pred, args, t.OutSchema)
		if err != nil || !changed {
			return n, false, err
		}
		c := *t
		c.Pred = pred
		return &c, true, nil
	case *Filter:
		in, inChanged, err := bindNodeParams(t.Input, args)
		if err != nil {
			return nil, false, err
		}
		pred, predChanged, err := bindExpr(t.Pred, args, in.Schema())
		if err != nil {
			return nil, false, err
		}
		if !inChanged && !predChanged {
			return n, false, nil
		}
		c := *t
		c.Input = in
		c.Pred = pred
		return &c, true, nil
	case *Join:
		l, lc, err := bindNodeParams(t.Left, args)
		if err != nil {
			return nil, false, err
		}
		r, rc, err := bindNodeParams(t.Right, args)
		if err != nil {
			return nil, false, err
		}
		res, resc, err := bindExpr(t.ResidualPred, args, t.outSchema)
		if err != nil {
			return nil, false, err
		}
		if !lc && !rc && !resc {
			return n, false, nil
		}
		c := *t
		c.Left = l
		c.Right = r
		c.ResidualPred = res
		// The join output schema is the concatenation of the child
		// schemas; child columns cannot change shape from parameter
		// substitution, so outSchema carries over.
		return &c, true, nil
	case *Project:
		in, inChanged, err := bindNodeParams(t.Input, args)
		if err != nil {
			return nil, false, err
		}
		exprs := t.Exprs
		anyExpr := false
		for i, e := range t.Exprs {
			ne, changed, err := bindExpr(e, args, in.Schema())
			if err != nil {
				return nil, false, err
			}
			if changed && !anyExpr {
				exprs = append([]expr.Expr(nil), t.Exprs...)
				anyExpr = true
			}
			if anyExpr {
				exprs[i] = ne
			}
		}
		if !inChanged && !anyExpr {
			return n, false, nil
		}
		c := *t
		c.Input = in
		c.Exprs = exprs
		// Result types may have been unresolvable with unknown parameter
		// types; recompute the output schema from the bound expressions.
		c.out = make(types.Schema, len(exprs))
		for i, e := range exprs {
			c.out[i] = types.Column{Name: t.Names[i], Type: e.Type()}
		}
		return &c, true, nil
	case *Aggregate:
		in, inChanged, err := bindNodeParams(t.Input, args)
		if err != nil {
			return nil, false, err
		}
		keys := t.Keys
		anyKey := false
		for i, k := range t.Keys {
			nk, changed, err := bindExpr(k, args, in.Schema())
			if err != nil {
				return nil, false, err
			}
			if changed && !anyKey {
				keys = append([]expr.Expr(nil), t.Keys...)
				anyKey = true
			}
			if anyKey {
				keys[i] = nk
			}
		}
		aggs := t.Aggs
		anyAgg := false
		for i, d := range t.Aggs {
			na, ac, err := bindExpr(d.Arg, args, in.Schema())
			if err != nil {
				return nil, false, err
			}
			nc, cc, err := bindExpr(d.ArgCount, args, in.Schema())
			if err != nil {
				return nil, false, err
			}
			if (ac || cc) && !anyAgg {
				aggs = append([]exec.AggDef(nil), t.Aggs...)
				anyAgg = true
			}
			if anyAgg {
				aggs[i].Arg = na
				aggs[i].ArgCount = nc
			}
		}
		if !inChanged && !anyKey && !anyAgg {
			return n, false, nil
		}
		c := *t
		c.Input = in
		c.Keys = keys
		c.Aggs = aggs
		c.out = aggOutputSchema(&c)
		return &c, true, nil
	case *DistinctNode:
		in, changed, err := bindNodeParams(t.Input, args)
		if err != nil || !changed {
			return n, false, err
		}
		c := *t
		c.Input = in
		return &c, true, nil
	case *Sort:
		in, changed, err := bindNodeParams(t.Input, args)
		if err != nil || !changed {
			return n, false, err
		}
		c := *t
		c.Input = in
		return &c, true, nil
	case *Limit:
		in, changed, err := bindNodeParams(t.Input, args)
		if err != nil || !changed {
			return n, false, err
		}
		c := *t
		c.Input = in
		return &c, true, nil
	}
	return n, false, nil
}

// walkNodes visits every node of the plan tree, children first.
func walkNodes(n Node, fn func(Node)) {
	switch t := n.(type) {
	case *Filter:
		walkNodes(t.Input, fn)
	case *Join:
		walkNodes(t.Left, fn)
		walkNodes(t.Right, fn)
	case *Project:
		walkNodes(t.Input, fn)
	case *Aggregate:
		walkNodes(t.Input, fn)
	case *DistinctNode:
		walkNodes(t.Input, fn)
	case *Sort:
		walkNodes(t.Input, fn)
	case *Limit:
		walkNodes(t.Input, fn)
	}
	fn(n)
}

// forEachExpr visits every expression attached to a single plan node.
func forEachExpr(n Node, fn func(expr.Expr)) {
	switch t := n.(type) {
	case *Scan:
		fn(t.Pred)
	case *Filter:
		fn(t.Pred)
	case *Join:
		fn(t.ResidualPred)
	case *Project:
		for _, e := range t.Exprs {
			fn(e)
		}
	case *Aggregate:
		for _, k := range t.Keys {
			fn(k)
		}
		for _, d := range t.Aggs {
			fn(d.Arg)
			fn(d.ArgCount)
		}
	}
}

// Scans collects every Scan node in the plan, in child-first order.
func Scans(p *Plan) []*Scan {
	var out []*Scan
	walkNodes(p.Root, func(n Node) {
		if s, ok := n.(*Scan); ok {
			out = append(out, s)
		}
	})
	return out
}

// Dep is one catalog object version a plan's result depends on.
type Dep struct {
	OID     catalog.OID
	Version uint64
}

// Deps returns the exact set of catalog object versions a plan's output
// depends on under snap: for every base-table scan, the table, the
// chosen projection, and — because data content changes (loads,
// mergeout, deletes) bump container/delete-vector state rather than the
// table definition — each storage container and delete vector the scan
// could read. A result computed from a plan is valid exactly as long as
// every Dep's ModVersion is unchanged; any DML, DDL or storage
// reorganization touching these objects invalidates it, while unrelated
// catalog activity does not. Virtual (system-table) scans have no stable
// dependency and yield ok=false: results over live monitoring state are
// never cacheable.
func Deps(p *Plan, snap *catalog.Snapshot) (deps []Dep, ok bool) {
	for _, s := range Scans(p) {
		if s.Virtual || s.Table == nil || s.Proj == nil {
			return nil, false
		}
		deps = append(deps,
			Dep{OID: s.Table.OID, Version: snap.ModVersion(s.Table.OID)},
			Dep{OID: s.Proj.OID, Version: snap.ModVersion(s.Proj.OID)})
		for _, sc := range snap.ContainersOf(s.Proj.OID, catalog.GlobalShard) {
			deps = append(deps, Dep{OID: sc.OID, Version: snap.ModVersion(sc.OID)})
			for _, dv := range snap.DeleteVectorsOf(sc.OID) {
				deps = append(deps, Dep{OID: dv.OID, Version: snap.ModVersion(dv.OID)})
			}
		}
	}
	return deps, true
}
