package core

import (
	"testing"

	"eon/internal/types"
)

// Enterprise moveout of partitioned WOS data: the drained rows must
// split into per-partition containers.
func TestMoveoutPartitionedWOS(t *testing.T) {
	db := newTestDB(t, ModeEnterprise, 2, 2)
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE ev (id INTEGER, bucket INTEGER) PARTITION BY bucket`)
	// Two small WOS inserts spanning two partitions (threshold 4).
	mustExec(t, s, `INSERT INTO ev VALUES (1, 0), (2, 1)`)
	mustExec(t, s, `INSERT INTO ev VALUES (3, 0)`)
	moved, err := db.RunMoveout()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("nothing moved out")
	}
	// Containers carry exactly one partition key each.
	init, _ := db.anyUpNode()
	snap := init.catalog.Snapshot()
	tbl, _ := snap.TableByName("ev")
	keys := map[string]bool{}
	for _, p := range snap.ProjectionsOf(tbl.OID) {
		for _, sc := range snap.ContainersOf(p.OID, -1) {
			if sc.PartitionKey != "0" && sc.PartitionKey != "1" {
				t.Errorf("container partition key %q", sc.PartitionKey)
			}
			keys[sc.PartitionKey] = true
		}
	}
	if len(keys) != 2 {
		t.Errorf("partition keys = %v", keys)
	}
	res := mustQuery(t, s, `SELECT COUNT(*) FROM ev WHERE bucket = 0`)
	if res.Row(t, 0)[0].I != 2 {
		t.Errorf("count = %v", res.Rows())
	}
}

// LIMIT without ORDER BY: any N rows, exercised distributed.
func TestLimitWithoutSort(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	setupSales(t, db, 100)
	s := db.NewSession()
	res := mustQuery(t, s, `SELECT sale_id FROM sales LIMIT 7`)
	if res.NumRows() != 7 {
		t.Errorf("rows = %d", res.NumRows())
	}
	// LIMIT larger than the data.
	res = mustQuery(t, s, `SELECT sale_id FROM sales LIMIT 1000`)
	if res.NumRows() != 100 {
		t.Errorf("rows = %d", res.NumRows())
	}
	// LIMIT over an aggregate (gathered input).
	res = mustQuery(t, s, `SELECT region, COUNT(*) AS n FROM sales GROUP BY region LIMIT 1`)
	if res.NumRows() != 1 {
		t.Errorf("rows = %d", res.NumRows())
	}
}

// INSERT literal coercions: ints into float columns, exact floats into
// int columns, and rejections.
func TestInsertCoercions(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE c (i INTEGER, f FLOAT, d DATE)`)
	mustExec(t, s, `INSERT INTO c VALUES (3.0, 4, DATE '2020-01-01')`)
	res := mustQuery(t, s, `SELECT i, f FROM c`)
	r := res.Row(t, 0)
	if r[0].I != 3 || r[1].F != 4.0 {
		t.Errorf("coerced row = %v", r)
	}
	// Lossy float into int must fail.
	if _, err := s.Execute(`INSERT INTO c VALUES (3.5, 1.0, NULL)`); err == nil {
		t.Error("lossy coercion should fail")
	}
	// String into int must fail.
	if _, err := s.Execute(`INSERT INTO c VALUES ('x', 1.0, NULL)`); err == nil {
		t.Error("string to int should fail")
	}
	// Arity mismatch must fail.
	if _, err := s.Execute(`INSERT INTO c VALUES (1)`); err == nil {
		t.Error("arity mismatch should fail")
	}
}

// Self-joins through the reshuffle path on a gathered side.
func TestThreeWayJoin(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE a (k INTEGER, v INTEGER)`)
	mustExec(t, s, `CREATE PROJECTION a_p AS SELECT * FROM a ORDER BY k SEGMENTED BY HASH(k) ALL NODES`)
	mustExec(t, s, `CREATE TABLE b (k INTEGER, w INTEGER)`)
	mustExec(t, s, `CREATE PROJECTION b_p AS SELECT * FROM b ORDER BY k SEGMENTED BY HASH(k) ALL NODES`)
	mustExec(t, s, `CREATE TABLE c (k INTEGER, x INTEGER)`)
	mustExec(t, s, `CREATE PROJECTION c_p AS SELECT * FROM c ORDER BY k SEGMENTED BY HASH(k) ALL NODES`)
	for i := 0; i < 10; i++ {
		mustExec(t, s, insertKV("a", i, i))
		mustExec(t, s, insertKV("b", i, i*2))
		mustExec(t, s, insertKV("c", i, i*3))
	}
	res := mustQuery(t, s, `SELECT COUNT(*) FROM a JOIN b ON a.k = b.k JOIN c ON b.k = c.k`)
	if res.Row(t, 0)[0].I != 10 {
		t.Errorf("3-way join count = %v", res.Rows())
	}
	// With residual predicates on the join.
	res = mustQuery(t, s, `SELECT COUNT(*) FROM a JOIN b ON a.k = b.k AND a.v < 5`)
	if res.Row(t, 0)[0].I != 5 {
		t.Errorf("residual join count = %v", res.Rows())
	}
}

// Query-level cache bypass combined with a LIMIT+ORDER pushdown (TopK on
// fragments) over real data.
func TestTopKPushdownDistributed(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	setupSales(t, db, 200)
	s := db.NewSession()
	res := mustQuery(t, s, `SELECT sale_id, price FROM sales ORDER BY price DESC, sale_id LIMIT 5`)
	if res.NumRows() != 5 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	// Verify against the full ordering.
	all := mustQuery(t, s, `SELECT sale_id, price FROM sales ORDER BY price DESC, sale_id`)
	for i := 0; i < 5; i++ {
		if res.Row(t, i).String() != all.Row(t, i).String() {
			t.Errorf("top-k row %d: %v vs %v", i, res.Row(t, i), all.Row(t, i))
		}
	}
}

// Batch arity/order through LoadRows with Date columns.
func TestLoadDateColumns(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE d (id INTEGER, day DATE)`)
	schema := types.Schema{{Name: "id", Type: types.Int64}, {Name: "day", Type: types.Date}}
	b := types.NewBatch(schema, 3)
	for i := 0; i < 3; i++ {
		b.AppendRow(types.Row{types.NewInt(int64(i)), types.NewDate(int64(18000 + i))})
	}
	if err := db.LoadRows("d", b); err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, s, `SELECT COUNT(*) FROM d WHERE day >= DATE '2019-04-15'`)
	// 18000 days = 2019-04-14; so days 18001, 18002 match.
	if res.Row(t, 0)[0].I != 2 {
		t.Errorf("date filter count = %v", res.Rows())
	}
}
