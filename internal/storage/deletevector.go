package storage

import (
	"fmt"
	"sort"

	"eon/internal/catalog"
	"eon/internal/cluster"
	"eon/internal/rosfile"
	"eon/internal/types"
)

// DeleteVectorPath names a delete vector file in the shared namespace.
func DeleteVectorPath(sid string) string {
	return fmt.Sprintf("data/%s/%s_dv", sid[:2], sid)
}

// BuildDeleteVector encodes a set of deleted tuple positions (offsets
// within one container) as a sorted int64 ROS column — "stored using the
// same format as regular columns" (§2.3).
func BuildDeleteVector(positions []int64) []byte {
	sorted := append([]int64(nil), positions...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	v := types.NewVector(types.Int64, len(sorted))
	prev := int64(-1)
	for _, p := range sorted {
		if p == prev {
			continue // dedupe
		}
		v.Append(types.NewInt(p))
		prev = p
	}
	return rosfile.WriteColumn(v, rosfile.WriteOptions{Sorted: true})
}

// ReadDeleteVector decodes delete vector file bytes into sorted
// positions.
func ReadDeleteVector(data []byte) ([]int64, error) {
	r, err := rosfile.NewReader(data)
	if err != nil {
		return nil, err
	}
	v, err := r.ReadAll()
	if err != nil {
		return nil, err
	}
	return v.Ints, nil
}

// NewDeleteVectorMeta builds the catalog object for a delete vector file.
func NewDeleteVectorMeta(alloc OIDAllocator, inst cluster.InstanceID, sc *catalog.StorageContainer, positions []int64, ownerNode string) (*catalog.DeleteVector, []byte) {
	data := BuildDeleteVector(positions)
	oid := alloc.NewOID()
	path := DeleteVectorPath(SID(inst, oid))
	return &catalog.DeleteVector{
		OID:          oid,
		ContainerOID: sc.OID,
		ProjOID:      sc.ProjOID,
		ShardIndex:   sc.ShardIndex,
		File:         catalog.FileRef{Path: path, Size: int64(len(data))},
		Count:        int64(countDistinct(positions)),
		OwnerNode:    ownerNode,
	}, data
}

func countDistinct(positions []int64) int {
	seen := make(map[int64]struct{}, len(positions))
	for _, p := range positions {
		seen[p] = struct{}{}
	}
	return len(seen)
}

// DeleteSet is the merged view of all delete vectors over one container.
type DeleteSet struct {
	positions map[int64]struct{}
}

// NewDeleteSet merges position lists.
func NewDeleteSet(lists ...[]int64) *DeleteSet {
	ds := &DeleteSet{positions: map[int64]struct{}{}}
	for _, l := range lists {
		for _, p := range l {
			ds.positions[p] = struct{}{}
		}
	}
	return ds
}

// Len returns the number of deleted positions.
func (d *DeleteSet) Len() int { return len(d.positions) }

// Contains reports whether tuple position p is deleted.
func (d *DeleteSet) Contains(p int64) bool {
	_, ok := d.positions[p]
	return ok
}

// LivePositions returns, for rows [base, base+n), the in-batch indexes of
// rows that are not deleted.
func (d *DeleteSet) LivePositions(base int64, n int) []int {
	if len(d.positions) == 0 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !d.Contains(base + int64(i)) {
			out = append(out, i)
		}
	}
	return out
}
