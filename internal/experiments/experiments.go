// Package experiments reproduces the paper's evaluation (§8): each
// function builds the clusters, runs the workload, and returns the same
// rows/series the corresponding figure reports. Absolute numbers depend
// on the host; the shapes — who wins, by what factor, where scaling
// bends — are the reproduction targets (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"eon/internal/core"
	"eon/internal/netsim"
	"eon/internal/objstore"
	"eon/internal/workload"
)

// SharedStorageSim returns the S3 simulator configuration used by every
// experiment: per-request latency and finite bandwidth make non-cached
// reads visibly slower than local access, scaled down (roughly 10x
// faster than real S3) so experiments run in seconds.
func SharedStorageSim(seed int64) objstore.SimConfig {
	return objstore.SimConfig{
		GetLatency:     3 * time.Millisecond,
		PutLatency:     1 * time.Millisecond,
		ListLatency:    500 * time.Microsecond,
		BytesPerSecond: 512 << 20, // 512 MiB/s aggregate
		Seed:           seed,
	}
}

// ClusterNet returns the interconnect model: small per-message latency.
func ClusterNet() *netsim.Network {
	return netsim.New(netsim.LinkCost{
		Latency:   50 * time.Microsecond,
		Bandwidth: 2 << 30, // 2 GiB/s links
	})
}

func nodeSpecs(n int) []core.NodeSpec {
	out := make([]core.NodeSpec, n)
	for i := range out {
		out[i] = core.NodeSpec{Name: fmt.Sprintf("node%d", i+1)}
	}
	return out
}

// costs models the per-node work one query/load performs while holding
// execution slots; throughput experiments need it so capacity scales
// with the simulated cluster instead of the host machine.
type costs struct {
	query time.Duration
	load  time.Duration
}

// throughputCosts approximate the paper's ~100 ms dashboard query and
// 50 MB COPY. The cost must dominate the raw in-process
// execution time, otherwise the host machine's CPU (which does not
// shrink when a simulated node dies) sets the throughput instead of the
// simulated cluster's slot capacity.
func throughputCosts() costs {
	return costs{query: 100 * time.Millisecond, load: 100 * time.Millisecond}
}

// newEonDB builds an Eon cluster with the standard simulators.
func newEonDB(nodes, shards, repFactor int, c costs) (*core.DB, *objstore.Sim, error) {
	sim := objstore.NewSim(objstore.NewMem(), SharedStorageSim(1))
	db, err := core.Create(core.Config{
		Mode:              core.ModeEon,
		Nodes:             nodeSpecs(nodes),
		ShardCount:        shards,
		ReplicationFactor: repFactor,
		Shared:            sim,
		Net:               ClusterNet(),
		ExecSlots:         8,
		QueryCost:         c.query,
		LoadCost:          c.load,
	})
	return db, sim, err
}

// newEnterpriseDB builds an Enterprise cluster (local storage).
func newEnterpriseDB(nodes int, c costs) (*core.DB, error) {
	return core.Create(core.Config{
		Mode:      core.ModeEnterprise,
		Nodes:     nodeSpecs(nodes),
		Net:       ClusterNet(),
		ExecSlots: 8,
		QueryCost: c.query,
		LoadCost:  c.load,
	})
}

// loadTPCH creates the schema and loads the scaled dataset.
func loadTPCH(db *core.DB, scale float64) error {
	w := workload.DefaultTPCH(scale)
	s := db.NewSession()
	return w.Setup(func(sql string) error {
		_, err := s.Execute(sql)
		return err
	}, db.LoadRows)
}

// NewEonCluster builds an Eon cluster with the standard experiment
// simulators (exported for the repository benchmarks).
func NewEonCluster(nodes, shards, repFactor int, queryCost, loadCost time.Duration) (*core.DB, *objstore.Sim, error) {
	return newEonDB(nodes, shards, repFactor, costs{query: queryCost, load: loadCost})
}

// NewEnterpriseCluster builds an Enterprise cluster with the standard
// experiment simulators.
func NewEnterpriseCluster(nodes int, queryCost, loadCost time.Duration) (*core.DB, error) {
	return newEnterpriseDB(nodes, costs{query: queryCost, load: loadCost})
}

// LoadTPCH creates the TPC-H-shaped schema and loads the scaled dataset.
func LoadTPCH(db *core.DB, scale float64) error { return loadTPCH(db, scale) }

// medianDuration runs fn reps times and returns the median duration.
func medianDuration(reps int, fn func() error) (time.Duration, error) {
	if reps < 1 {
		reps = 1
	}
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start))
	}
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	return times[len(times)/2], nil
}

// runThroughput runs fn from `threads` goroutines for the window and
// returns completions per minute.
func runThroughput(threads int, window time.Duration, fn func(worker int) error) (float64, error) {
	var done atomic.Int64
	var firstErr atomic.Value
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if err := fn(w); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				// Work that straddles the deadline does not count —
				// otherwise up to one inflated completion per thread
				// distorts the high-concurrency points.
				if time.Now().Before(deadline) {
					done.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return 0, err
	}
	perMin := float64(done.Load()) / window.Minutes()
	return perMin, nil
}

// countRows is a tiny helper for sanity checks inside experiments.
func countRows(db *core.DB, table string) (int64, error) {
	res, err := db.NewSession().Query("SELECT COUNT(*) FROM " + table)
	if err != nil {
		return 0, err
	}
	return res.Batch.Cols[0].Ints[0], nil
}
