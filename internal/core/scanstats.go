package core

import (
	"sync/atomic"
	"time"

	"eon/internal/expr"
)

// ScanStats is a snapshot of scan-path instrumentation: what a query (or
// the whole database, for the cumulative view) did against storage —
// pruning effectiveness, bytes moved, cache behaviour, and where the
// time went. Time counters are cumulative across the scan's concurrent
// workers, so under a parallel scan they can exceed the query's wall
// time; the ratio IO/(IO+Decode+Filter) still shows where the work is.
type ScanStats struct {
	// ContainersScanned / ContainersPruned count containers read vs
	// skipped whole by catalog min/max stats (§2.1).
	ContainersScanned int64
	ContainersPruned  int64
	// BlocksScanned / BlocksPruned count blocks decoded vs skipped by
	// the position index's per-block min/max (§2.3).
	BlocksScanned int64
	BlocksPruned  int64
	// RowsScanned counts rows decoded before delete/predicate filtering.
	RowsScanned int64
	// Fetches and BytesFetched count storage-file reads issued by the
	// scan (through the cache or directly) and the bytes they returned.
	Fetches      int64
	BytesFetched int64
	// CacheHits/CacheMisses/CoalescedFetches classify the cache reads;
	// a coalesced fetch is a miss that joined another scan's in-flight
	// fetch of the same path instead of issuing its own (single-flight).
	CacheHits        int64
	CacheMisses      int64
	CoalescedFetches int64
	// RowsVectorized / RowsFallback split expression evaluation between
	// the typed batch kernels and the per-row fallback: RowsVectorized
	// counts rows entering a vectorized evaluation (scan predicates and
	// operator expressions alike) and RowsFallback counts rows that had
	// to be re-evaluated row-at-a-time because an expression node had no
	// kernel. RowsFallback == 0 means full kernel coverage.
	RowsVectorized int64
	RowsFallback   int64
	// IOWait / Decode / Filter split the scan's working time: blocked on
	// file reads, decoding blocks, and evaluating deletes + predicates.
	IOWait time.Duration
	Decode time.Duration
	Filter time.Duration
	// Wall is the end-to-end execution wall time of the query (only set
	// on per-query snapshots, not on the cumulative database view).
	Wall time.Duration
}

// Add accumulates other into s.
func (s *ScanStats) Add(other ScanStats) {
	s.ContainersScanned += other.ContainersScanned
	s.ContainersPruned += other.ContainersPruned
	s.BlocksScanned += other.BlocksScanned
	s.BlocksPruned += other.BlocksPruned
	s.RowsScanned += other.RowsScanned
	s.Fetches += other.Fetches
	s.BytesFetched += other.BytesFetched
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
	s.CoalescedFetches += other.CoalescedFetches
	s.RowsVectorized += other.RowsVectorized
	s.RowsFallback += other.RowsFallback
	s.IOWait += other.IOWait
	s.Decode += other.Decode
	s.Filter += other.Filter
	s.Wall += other.Wall
}

// scanTally is the mutable, concurrency-safe accumulator behind
// ScanStats. One lives per query (hung off the queryEnv and written by
// every scan worker) and one per DB (the cumulative totals). A nil
// *scanTally is valid and drops all records, so maintenance paths can
// share the scan helpers without instrumentation.
type scanTally struct {
	// vec holds the vectorized/fallback row counters; expression
	// evaluation writes it directly (it is handed to EvalVec/FilterVec).
	vec expr.VecStats

	containersScanned atomic.Int64
	containersPruned  atomic.Int64
	blocksScanned     atomic.Int64
	blocksPruned      atomic.Int64
	rowsScanned       atomic.Int64
	fetches           atomic.Int64
	bytesFetched      atomic.Int64
	cacheHits         atomic.Int64
	cacheMisses       atomic.Int64
	coalescedFetches  atomic.Int64
	ioWaitNanos       atomic.Int64
	decodeNanos       atomic.Int64
	filterNanos       atomic.Int64
	wallNanos         atomic.Int64
}

// vecStats exposes the vectorized-row counters for handing to
// expr.EvalVec/FilterVec. Nil-safe (a nil *expr.VecStats drops counts).
func (t *scanTally) vecStats() *expr.VecStats {
	if t == nil {
		return nil
	}
	return &t.vec
}

func (t *scanTally) addIOWait(d time.Duration) { t.ioWaitNanos.Add(int64(d)) }
func (t *scanTally) addDecode(d time.Duration) { t.decodeNanos.Add(int64(d)) }
func (t *scanTally) addFilter(d time.Duration) { t.filterNanos.Add(int64(d)) }

// snapshot converts the tally into a ScanStats value.
func (t *scanTally) snapshot() ScanStats {
	return ScanStats{
		ContainersScanned: t.containersScanned.Load(),
		ContainersPruned:  t.containersPruned.Load(),
		BlocksScanned:     t.blocksScanned.Load(),
		BlocksPruned:      t.blocksPruned.Load(),
		RowsScanned:       t.rowsScanned.Load(),
		Fetches:           t.fetches.Load(),
		BytesFetched:      t.bytesFetched.Load(),
		CacheHits:         t.cacheHits.Load(),
		CacheMisses:       t.cacheMisses.Load(),
		CoalescedFetches:  t.coalescedFetches.Load(),
		RowsVectorized:    t.vec.Vectorized.Load(),
		RowsFallback:      t.vec.Fallback.Load(),
		IOWait:            time.Duration(t.ioWaitNanos.Load()),
		Decode:            time.Duration(t.decodeNanos.Load()),
		Filter:            time.Duration(t.filterNanos.Load()),
		Wall:              time.Duration(t.wallNanos.Load()),
	}
}

// add accumulates a per-query snapshot into the tally (the DB totals).
func (t *scanTally) add(s ScanStats) {
	t.containersScanned.Add(s.ContainersScanned)
	t.containersPruned.Add(s.ContainersPruned)
	t.blocksScanned.Add(s.BlocksScanned)
	t.blocksPruned.Add(s.BlocksPruned)
	t.rowsScanned.Add(s.RowsScanned)
	t.fetches.Add(s.Fetches)
	t.bytesFetched.Add(s.BytesFetched)
	t.cacheHits.Add(s.CacheHits)
	t.cacheMisses.Add(s.CacheMisses)
	t.coalescedFetches.Add(s.CoalescedFetches)
	t.vec.Vectorized.Add(s.RowsVectorized)
	t.vec.Fallback.Add(s.RowsFallback)
	t.ioWaitNanos.Add(int64(s.IOWait))
	t.decodeNanos.Add(int64(s.Decode))
	t.filterNanos.Add(int64(s.Filter))
	t.wallNanos.Add(int64(s.Wall))
}
