package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"eon/internal/catalog"
	"eon/internal/cluster"
	"eon/internal/hashring"
	"eon/internal/objstore"
	"eon/internal/resilience"
	"eon/internal/udfs"
)

// ErrLeaseHeld is returned when revive finds an unexpired lease — another
// cluster is likely running on the same shared storage (§3.5).
var ErrLeaseHeld = errors.New("core: revive aborted, shared-storage lease still held")

// Revive starts a cluster from shared storage (§3.5): commission nodes
// with empty local storage, download catalogs, read cluster_info.json,
// check the lease, truncate every catalog to the consensus truncation
// version, adopt a new incarnation, and upload a new cluster_info.json
// as the commit point.
func Revive(cfg Config) (*DB, error) {
	if cfg.Shared == nil {
		return nil, fmt.Errorf("core: revive requires the shared storage")
	}
	cfg.Mode = ModeEon
	ctx := contextBackground()

	// Revive is all shared-storage I/O, the paper's "any filesystem
	// access can and will fail" case (§5.3): wrap the store before the
	// very first read so the whole procedure retries and hedges.
	rc := cfg.resilienceConfig()
	rs := resilience.Wrap[objstore.Info](cfg.Shared, rc)

	// Read the commit-point file.
	data, err := rs.Get(ctx, cluster.InfoFileName)
	if err != nil {
		return nil, fmt.Errorf("core: no %s on shared storage: %w", cluster.InfoFileName, err)
	}
	info, err := cluster.ParseInfo(data)
	if err != nil {
		return nil, err
	}

	// Node set defaults to the previous cluster's membership.
	if len(cfg.Nodes) == 0 {
		for _, n := range info.Nodes {
			cfg.Nodes = append(cfg.Nodes, NodeSpec{Name: n})
		}
	}
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	if info.LeaseValid(nowFor(cfg)) {
		return nil, fmt.Errorf("%w (expires %s)", ErrLeaseHeld, info.LeaseExpiry)
	}

	db := &DB{
		cfg:         cfg,
		mode:        ModeEon,
		nodes:       map[string]*Node{},
		net:         cfg.Net,
		incarnation: cluster.NewIncarnationID(), // new incarnation per revive
	}
	db.installResilience(rs, rc)
	db.sharedFS = udfs.NewObjectFS(db.shared)
	db.slots = newSlotManager()
	db.admission = newAdmissionController(cfg.SubclusterConcurrency, cfg.AdmissionMemoryLimit)
	db.planCache = newPlanCache(cfg.PlanCacheSize)
	db.resultCache = newResultCache(cfg.ResultCacheBytes)
	for _, spec := range cfg.Nodes {
		n := newNode(spec, &cfg)
		db.nodes[spec.Name] = n
		db.order = append(db.order, spec.Name)
		db.slots.register(spec.Name, cfg.ExecSlots)
	}
	db.truncation.Store(info.TruncationVersion)

	// Download each node's uploaded catalog into its (empty) local disk.
	oldPrefix := fmt.Sprintf("metadata/%s/", info.Incarnation)
	for _, name := range db.order {
		n := db.nodes[name]
		infos, err := db.shared.List(ctx, oldPrefix+name+"/")
		if err != nil {
			return nil, err
		}
		for _, fi := range infos {
			body, err := db.shared.Get(ctx, fi.Key)
			if err != nil {
				return nil, err
			}
			base := fi.Key[len(oldPrefix+name+"/"):]
			if err := n.fs.WriteFile(ctx, "catalog/"+base, body); err != nil {
				return nil, err
			}
		}
	}

	// Truncate each node to the consensus version; nodes whose uploads
	// fall short are repaired from a donor that reached it.
	var donor *catalog.Snapshot
	var donorNext catalog.OID
	type pendingRepair struct{ n *Node }
	var repairs []pendingRepair
	for _, name := range db.order {
		n := db.nodes[name]
		snap, next, err := catalog.TruncateTo(ctx, n.fs, "catalog", info.TruncationVersion)
		if err != nil {
			repairs = append(repairs, pendingRepair{n})
			continue
		}
		n.catalog.Install(snap, next)
		if donor == nil {
			donor, donorNext = snap, next
		}
	}
	if donor == nil {
		return nil, fmt.Errorf("core: no node's uploads reach truncation version %d", info.TruncationVersion)
	}
	for _, r := range repairs {
		// Re-subscription repair: install the donor snapshot filtered to
		// the node's subscriptions.
		keep := map[int]bool{}
		for _, s := range donor.Subscriptions(r.n.name) {
			keep[s.ShardIndex] = true
		}
		r.n.catalog.Install(donor.FilterShards(keep), donorNext)
	}

	// Restore each node's membership attributes (subcluster, spare flag)
	// from the revived catalog — the authoritative record of which nodes
	// were serving members and which were warm spares.
	for _, cn := range donor.Nodes() {
		if n, ok := db.nodes[cn.Name]; ok {
			n.setMembership(cn.Subcluster, cn.Spare)
		}
	}

	// The ring is fixed by the shard objects in the catalog.
	segCount := donor.SegmentShardCount()
	if segCount == 0 {
		return nil, fmt.Errorf("core: revived catalog has no shards")
	}
	db.ring = hashring.NewRing(segCount)
	db.cfg.ShardCount = segCount

	// Fresh cluster, fresh caches: subscriptions return as they were at
	// the truncation version; nodes listed in the catalog but absent
	// from the new node set would need a rebalance (same set here).

	// Commit point: upload the new incarnation's cluster_info.json.
	if err := db.writeClusterInfo(ctx, info.TruncationVersion, cfg.LeaseDuration); err != nil {
		return nil, err
	}
	return db, nil
}

func contextBackground() context.Context { return context.Background() }

// nowFor returns the revive-time clock, honoring the test hook.
func nowFor(cfg Config) time.Time {
	if cfg.Now != nil {
		return cfg.Now()
	}
	return time.Now()
}
